package query

import (
	"context"
	"fmt"

	"insitubits/internal/bitcache"
	"insitubits/internal/bitvec"
	"insitubits/internal/codec"
	"insitubits/internal/telemetry"
)

// This file is the execute half of the query pipeline: it walks an
// optimized plan, consults the bitmap cache at every node with a canonical
// key, and feeds ANALYZE profiles and identity-trace spans exactly as the
// naive paths do. ANALYZE accounting on a cache hit charges one scan of the
// cached encoding and nothing else — the per-operand children are absent,
// which is precisely the work the cache saved and what the scan-reduction
// acceptance test measures.

// ctxCacheKey carries a per-request cache override (WithCache).
type ctxCacheKey struct{}

// WithCache returns a context whose query entry points use c as the bitmap
// cache instead of the process default (bitcache.SetDefault). Passing nil
// disables caching for requests under this context even when a default
// cache is installed.
func WithCache(ctx context.Context, c *bitcache.Cache) context.Context {
	return context.WithValue(ctx, ctxCacheKey{}, c)
}

// cacheFrom resolves the effective cache for a request: the context
// override when present, else the process default (usually nil — caching
// is opt-in, keeping the disabled hot path at one atomic load).
func cacheFrom(ctx context.Context) *bitcache.Cache {
	if c, ok := ctx.Value(ctxCacheKey{}).(*bitcache.Cache); ok {
		return c
	}
	return bitcache.Default()
}

// executor runs optimized plans against one resolved cache.
type executor struct {
	cache *bitcache.Cache
}

func newExecutor(ctx context.Context) *executor {
	return &executor{cache: cacheFrom(ctx)}
}

func (e *executor) lookup(key string) bitvec.Bitmap {
	if e.cache == nil || key == "" {
		return nil
	}
	return e.cache.Get(key)
}

func (e *executor) store(key string, bm bitvec.Bitmap, gens []uint64) {
	if e.cache == nil || key == "" {
		return
	}
	e.cache.Put(key, bm, gens...)
}

// cacheHitNode records an operator answered from the cache: it is charged
// one scan of the cached encoding (the only work the consumer still pays).
func (e *executor) cacheHitNode(parent *Node, op, detail string, bm bitvec.Bitmap) *Node {
	n := parent.child(op, detail)
	if n != nil {
		n.Codec = codecName(bm)
		n.Cost = n.scanCostOf(bm)
		n.Cache = "hit"
	}
	return n
}

// markMiss annotates a computed-and-stored operator, only when a cache was
// actually consulted (cache-off profiles stay byte-identical to pre-cache).
func (e *executor) markMiss(n *Node, key string) {
	if e.cache != nil && key != "" {
		n.markCache("miss")
	}
}

// zeroVector builds the all-zero vector over n bits in O(1) fill runs.
func zeroVector(n int) *bitvec.Vector {
	var a bitvec.Appender
	full := n / bitvec.SegmentBits
	a.AppendFill(0, full)
	if rem := n - full*bitvec.SegmentBits; rem > 0 {
		a.AppendPartial(0, rem)
	}
	return a.Vector()
}

// buildLeaf materializes a ones/range leaf honouring its codec hint.
func buildLeaf(p *planNode) bitvec.Bitmap {
	var v bitvec.Bitmap
	if p.kind == planOnes {
		v = onesVector(p.n)
	} else {
		v = rangeVector(p.n, p.slo, p.shi)
	}
	if p.hint == codec.Dense {
		v = codec.Encode(v, codec.Dense)
	}
	return v
}

// exec runs one optimized plan node and returns its bitmap. prof and sp
// follow the package-wide conventions: nil-safe, one profile node per
// operator, bounded child spans.
func (e *executor) exec(p *planNode, prof *Node, sp *telemetry.ActiveSpan) bitvec.Bitmap {
	switch p.kind {
	case planEmpty:
		n := prof.child("empty", p.note)
		v := zeroVector(p.n)
		n.setOut(v)
		return v

	case planOnes, planRange:
		op, detail := "ones", "no value predicate"
		if p.kind == planRange {
			op, detail = "range", fmt.Sprintf("spatial=[%d,%d)", p.slo, p.shi)
		}
		if p.note != "" {
			detail += "; " + p.note
		}
		if hit := e.lookup(p.key); hit != nil {
			return e.hitResult(prof, op, detail, hit)
		}
		v := buildLeaf(p)
		e.store(p.key, v, nil)
		n := prof.child(op, detail)
		n.setOut(v)
		e.markMiss(n, p.key)
		return v

	case planBinOr:
		detail := fmt.Sprintf("value=[%g,%g)", p.vlo, p.vhi)
		if p.note != "" {
			detail += "; " + p.note
		}
		if hit := e.lookup(p.key); hit != nil {
			return e.hitResult(prof, "or-merge", detail, hit)
		}
		n := prof.child("or-merge", detail)
		osp := sp.Child("or-merge")
		var ct codecTally
		var acc bitvec.Bitmap
		for _, b := range p.bins {
			ct.bin(p.x, b)
			n.binChild("or", p.x, b)
			if acc == nil {
				acc = p.x.Bitmap(b)
			} else {
				acc = acc.Or(p.x.Bitmap(b))
			}
		}
		ct.flush()
		if len(p.bins) == 1 {
			acc = acc.Clone()
		}
		n.addCost(Cost{BinsTouched: len(p.bins)})
		e.store(p.key, acc, p.gens)
		n.setOut(acc)
		e.markMiss(n, p.key)
		osp.SetAttrInt("bins", int64(len(p.bins)))
		addOperandSpans(osp, ct)
		osp.End()
		return acc

	case planAnd:
		if hit := e.lookup(p.key); hit != nil {
			return e.hitResult(prof, "and-merge", p.note, hit)
		}
		acc := e.exec(p.children[0], prof, sp)
		for i := 1; i < len(p.children); i++ {
			c := p.children[i]
			// Runtime short-circuit: an empty intermediate zeroes every
			// further AND, so the remaining operands are never computed.
			if acc.Count() == 0 {
				prof.child("and-merge", fmt.Sprintf("short-circuit: empty intermediate, %d operands skipped", len(p.children)-i))
				break
			}
			rhs := e.exec(c, prof, sp)
			op := "and-merge"
			if c.kind == planRange {
				op = "and-range"
			}
			detail := p.note
			if c.kind == planRange {
				detail = fmt.Sprintf("spatial=[%d,%d)", c.slo, c.shi)
			}
			n := prof.child(op, detail)
			asp := sp.Child(op)
			n.scanOperand(acc)
			n.scanOperand(rhs)
			n.markFallback(countPairOperands(acc, rhs))
			acc = acc.And(rhs)
			n.setOut(acc)
			asp.SetAttr("codec", codecName(acc))
			asp.End()
		}
		e.store(p.key, acc, p.gens)
		return acc
	}
	// Unreachable: every kind is handled above.
	return zeroVector(p.n)
}

// hitResult is the common cache-hit epilogue for whole-node hits.
func (e *executor) hitResult(prof *Node, op, detail string, hit bitvec.Bitmap) bitvec.Bitmap {
	e.cacheHitNode(prof, op, detail, hit)
	return hit
}

// ---------------------------------------------------------------------------
// Explain rendering of an optimized plan: the same tree shapes exec emits,
// with estimated costs instead of measured ones, so `bitmapctl explain`
// shows the chosen operand order, pruning, and merge strategy up front.

func explainPlanNode(p *planNode, parent *Node) {
	switch p.kind {
	case planEmpty:
		parent.child("empty", p.note).setRows(0)

	case planOnes:
		n := parent.child("ones", "no value predicate")
		n.setRows(p.n)

	case planRange:
		n := parent.child("range", fmt.Sprintf("spatial=[%d,%d)", p.slo, p.shi))
		n.addCost(p.est)

	case planBinOr:
		detail := fmt.Sprintf("value=[%g,%g)", p.vlo, p.vhi)
		if p.note != "" {
			detail += "; " + p.note
		}
		n := parent.child("or-merge", detail)
		for _, b := range p.bins {
			c := n.child("or", "")
			c.Bin = b
			c.Codec = p.x.Codec(b).String()
			c.Cost = estBin(p.x, b, 1)
		}
		n.addCost(Cost{BinsTouched: len(p.bins)})
		n.setRows(int(p.est.Rows))

	case planAnd:
		explainPlanNode(p.children[0], parent)
		segWords := int64((p.n + bitvec.SegmentBits - 1) / bitvec.SegmentBits)
		rows := p.children[0].est.Rows
		for i := 1; i < len(p.children); i++ {
			c := p.children[i]
			op, detail := "and-merge", p.note
			if c.kind == planRange {
				op, detail = "and-range", fmt.Sprintf("spatial=[%d,%d)", c.slo, c.shi)
				if c.note != "" {
					detail += "; " + c.note
				}
				if p.note != "" {
					detail += "; " + p.note
				}
			} else {
				explainPlanNode(c, parent)
			}
			n := parent.child(op, detail)
			n.addCost(Cost{WordsScanned: 2 * segWords, BytesDecoded: 8 * segWords})
			if p.n > 0 {
				rows = int64(float64(rows) * float64(c.est.Rows) / float64(p.n))
			}
			n.setRows(int(rows))
		}
	}
}
