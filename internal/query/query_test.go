package query

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"insitubits/internal/binning"
	"insitubits/internal/bitvec"
	"insitubits/internal/index"
	"insitubits/internal/metrics"
)

func smooth(r *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	v := 5.0
	for i := range out {
		if r.Intn(60) == 0 {
			v = r.Float64() * 10
		}
		v += (r.Float64() - 0.5) * 0.05
		out[i] = math.Min(9.999, math.Max(0, v))
	}
	return out
}

func build(t *testing.T, data []float64, bins int) *index.Index {
	t.Helper()
	m, err := binning.NewUniform(0, 10, bins)
	if err != nil {
		t.Fatal(err)
	}
	return index.Build(data, m)
}

// naive computes the exact subset aggregate from raw data, with the SAME
// bin-granular value semantics the bitmap path has (a value subset selects
// whole bins).
func naive(x *index.Index, data []float64, s Subset) (count int, sum float64) {
	lo, hi := s.spatialBounds(len(data))
	for i := lo; i < hi; i++ {
		if s.hasValue() {
			b := x.Mapper().Bin(data[i])
			if !(x.Mapper().High(b) > s.ValueLo && x.Mapper().Low(b) < s.ValueHi) {
				continue
			}
		}
		count++
		sum += data[i]
	}
	return count, sum
}

func TestCountExactAndSumBounded(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	data := smooth(r, 5000)
	x := build(t, data, 64)
	subsets := []Subset{
		{},
		{ValueLo: 2, ValueHi: 7},
		{SpatialLo: 100, SpatialHi: 3100},
		{ValueLo: 4, ValueHi: 6, SpatialLo: 500, SpatialHi: 4000},
		{ValueLo: 9.99, ValueHi: 10, SpatialLo: 0, SpatialHi: 10},
	}
	for i, s := range subsets {
		wantCount, wantSum := naive(x, data, s)
		c, err := Count(context.Background(), x, s)
		if err != nil {
			t.Fatal(err)
		}
		if c != wantCount {
			t.Fatalf("subset %d: Count=%d want %d", i, c, wantCount)
		}
		agg, err := Sum(context.Background(), x, s)
		if err != nil {
			t.Fatal(err)
		}
		if agg.Count != wantCount {
			t.Fatalf("subset %d: Sum.Count=%d want %d", i, agg.Count, wantCount)
		}
		if wantCount > 0 && (wantSum < agg.Lo-1e-9 || wantSum > agg.Hi+1e-9) {
			t.Fatalf("subset %d: true sum %g outside bounds [%g, %g]", i, wantSum, agg.Lo, agg.Hi)
		}
		if agg.Estimate < agg.Lo-1e-9 || agg.Estimate > agg.Hi+1e-9 {
			t.Fatalf("subset %d: estimate %g outside its own bounds", i, agg.Estimate)
		}
	}
}

func TestMeanBounds(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	data := smooth(r, 3000)
	x := build(t, data, 100)
	s := Subset{SpatialLo: 200, SpatialHi: 2500}
	cnt, sum := naive(x, data, s)
	trueMean := sum / float64(cnt)
	agg, err := Mean(context.Background(), x, s)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != cnt {
		t.Fatalf("Count=%d want %d", agg.Count, cnt)
	}
	if trueMean < agg.Lo-1e-9 || trueMean > agg.Hi+1e-9 {
		t.Fatalf("true mean %g outside [%g, %g]", trueMean, agg.Lo, agg.Hi)
	}
	// With 100 bins over a width-10 range the bound gap is the bin width.
	if agg.Hi-agg.Lo > 0.1+1e-9 {
		t.Fatalf("mean bound gap %g exceeds one bin width", agg.Hi-agg.Lo)
	}
	// Empty subset.
	empty, err := Mean(context.Background(), x, Subset{ValueLo: 100, ValueHi: 200})
	if err != nil || empty.Count != 0 {
		t.Fatalf("empty mean: %+v, %v", empty, err)
	}
}

func TestMinMaxBounds(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	data := smooth(r, 2000)
	x := build(t, data, 64)
	s := Subset{SpatialLo: 50, SpatialHi: 1500}
	trueMin, trueMax := math.Inf(1), math.Inf(-1)
	for i := 50; i < 1500; i++ {
		trueMin = math.Min(trueMin, data[i])
		trueMax = math.Max(trueMax, data[i])
	}
	min, max, err := MinMax(context.Background(), x, s)
	if err != nil {
		t.Fatal(err)
	}
	if trueMin < min.Lo-1e-9 || trueMin > min.Hi+1e-9 {
		t.Fatalf("true min %g outside bin [%g, %g]", trueMin, min.Lo, min.Hi)
	}
	if trueMax < max.Lo-1e-9 || trueMax > max.Hi+1e-9 {
		t.Fatalf("true max %g outside bin [%g, %g]", trueMax, max.Lo, max.Hi)
	}
	// Empty subset yields zero aggregates.
	min, max, err = MinMax(context.Background(), x, Subset{ValueLo: 50, ValueHi: 60})
	if err != nil || min.Count != 0 || max.Count != 0 {
		t.Fatalf("empty MinMax: %+v %+v %v", min, max, err)
	}
}

func TestSubsetValidation(t *testing.T) {
	x := build(t, make([]float64, 100), 4)
	for _, s := range []Subset{
		{SpatialLo: -1, SpatialHi: 10},
		{SpatialLo: 0, SpatialHi: 101},
	} {
		if _, err := Count(context.Background(), x, s); err == nil {
			t.Errorf("subset %+v accepted", s)
		}
	}
}

func TestBitsMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	data := smooth(r, 900) // not a segment multiple
	x := build(t, data, 32)
	for trial := 0; trial < 50; trial++ {
		lo := r.Intn(len(data))
		hi := lo + r.Intn(len(data)-lo)
		vlo := r.Float64() * 10
		vhi := vlo + r.Float64()*(10-vlo)
		s := Subset{ValueLo: vlo, ValueHi: vhi, SpatialLo: lo, SpatialHi: hi}
		v, err := Bits(context.Background(), x, s)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			inSpace := i >= lo && i < hi
			b := x.Mapper().Bin(data[i])
			inValue := !s.hasValue() || (x.Mapper().High(b) > vlo && x.Mapper().Low(b) < vhi)
			if v.Get(i) != (inSpace && inValue) {
				t.Fatalf("trial %d: bit %d = %v, want %v", trial, i, v.Get(i), inSpace && inValue)
			}
		}
	}
}

func TestRangeVectorCompact(t *testing.T) {
	v := rangeVector(31*1000, 31*100, 31*900)
	if v.Count() != 31*800 {
		t.Fatalf("Count=%d", v.Count())
	}
	if v.Words() > 3 {
		t.Fatalf("aligned range uses %d words, want <=3 fills", v.Words())
	}
	// Ragged boundaries.
	w := rangeVector(1000, 17, 993)
	if w.Count() != 993-17 {
		t.Fatalf("ragged Count=%d", w.Count())
	}
}

func TestCorrelationSubsetMatchesFullData(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := 4000
	a := smooth(r, n)
	b := make([]float64, n)
	for i := range b {
		if i >= 1000 && i < 2000 {
			b[i] = a[i] // correlated window
		} else {
			b[i] = r.Float64() * 10
		}
	}
	xa := build(t, a, 32)
	xb := build(t, b, 32)
	// Spatial subset covering the correlated window: MI from the query
	// must equal the full-data MI over the same elements.
	s := Subset{SpatialLo: 1000, SpatialHi: 2000}
	got, err := Correlation(context.Background(), xa, xb, s, s)
	if err != nil {
		t.Fatal(err)
	}
	want := metrics.PairFromData(a[1000:2000], b[1000:2000], xa.Mapper(), xb.Mapper())
	if math.Abs(got.MI-want.MI) > 1e-9 {
		t.Fatalf("subset MI %g, full-data %g", got.MI, want.MI)
	}
	if math.Abs(got.EntropyA-want.EntropyA) > 1e-9 || math.Abs(got.CondEntropyAB-want.CondEntropyAB) > 1e-9 {
		t.Fatalf("subset metrics diverge: %+v vs %+v", got, want)
	}
	// Inside the window the variables are identical => high MI; outside
	// they are independent => low MI.
	out, err := Correlation(context.Background(), xa, xb, Subset{SpatialLo: 2500, SpatialHi: 3500}, Subset{SpatialLo: 2500, SpatialHi: 3500})
	if err != nil {
		t.Fatal(err)
	}
	if got.MI < out.MI+1 {
		t.Fatalf("correlated window MI %g not clearly above independent %g", got.MI, out.MI)
	}
}

func TestCorrelationValidation(t *testing.T) {
	x := build(t, make([]float64, 100), 4)
	y := build(t, make([]float64, 50), 4)
	if _, err := Correlation(context.Background(), x, y, Subset{}, Subset{}); err == nil {
		t.Error("mismatched indices accepted")
	}
	if _, err := Correlation(context.Background(), x, x, Subset{SpatialLo: 0, SpatialHi: 10}, Subset{SpatialLo: 5, SpatialHi: 10}); err == nil {
		t.Error("different spatial ranges accepted")
	}
	// Empty intersection returns zeros without error.
	p, err := Correlation(context.Background(), x, x, Subset{ValueLo: 50, ValueHi: 60}, Subset{})
	if err != nil || p.MI != 0 {
		t.Errorf("empty correlation: %+v, %v", p, err)
	}
}

func TestMaskedAggregation(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	data := smooth(r, 2000)
	x := build(t, data, 64)
	validBools := make([]bool, len(data))
	for i := range validBools {
		validBools[i] = r.Intn(5) != 0 // ~20% missing
	}
	mask := bitvec.FromBools(validBools)
	m, err := NewMasked(x, mask)
	if err != nil {
		t.Fatal(err)
	}
	if m.Missing() != len(data)-mask.Count() {
		t.Fatalf("Missing=%d", m.Missing())
	}
	agg, err := m.Sum(context.Background(), Subset{})
	if err != nil {
		t.Fatal(err)
	}
	wantCount, wantSum := 0, 0.0
	for i, ok := range validBools {
		if ok {
			wantCount++
			wantSum += data[i]
		}
	}
	if agg.Count != wantCount {
		t.Fatalf("masked Count=%d want %d", agg.Count, wantCount)
	}
	if wantSum < agg.Lo-1e-9 || wantSum > agg.Hi+1e-9 {
		t.Fatalf("masked sum %g outside [%g, %g]", wantSum, agg.Lo, agg.Hi)
	}
	if _, err := NewMasked(x, bitvec.FromBools(make([]bool, 10))); err == nil {
		t.Error("wrong-length mask accepted")
	}
}

func TestImpute(t *testing.T) {
	// Genuinely smooth data (no jumps): window-mean imputation must land
	// close to the hidden truth.
	data := make([]float64, 1000)
	for i := range data {
		data[i] = 5 + 3*math.Sin(float64(i)/40)
	}
	x := build(t, data, 200) // fine bins: midpoints close to true values
	validBools := make([]bool, len(data))
	for i := range validBools {
		validBools[i] = i%10 != 3 // every 10th element missing
	}
	m, err := NewMasked(x, bitvec.FromBools(validBools))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Impute(0); err == nil {
		t.Fatal("zero window accepted")
	}
	imputed, err := m.Impute(4)
	if err != nil {
		t.Fatal(err)
	}
	// Smooth data: imputed values must be close to the hidden truth.
	worst := 0.0
	for i, ok := range validBools {
		if ok {
			continue
		}
		if math.IsNaN(imputed[i]) {
			t.Fatalf("position %d not imputed", i)
		}
		if d := math.Abs(imputed[i] - data[i]); d > worst {
			worst = d
		}
	}
	if worst > 1.0 {
		t.Fatalf("worst imputation error %g too large for smooth data", worst)
	}
}

func TestImputeAllMissingWindow(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5}
	x := build(t, data, 8)
	m, err := NewMasked(x, bitvec.FromBools(make([]bool, 5))) // all missing
	if err != nil {
		t.Fatal(err)
	}
	imputed, err := m.Impute(1)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range imputed {
		if !math.IsNaN(v) {
			t.Fatalf("position %d imputed to %g with no valid data", i, v)
		}
	}
}

func TestQuantileBoundsHoldTruth(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	data := smooth(r, 4000)
	x := build(t, data, 80)
	sortedAll := append([]float64(nil), data...)
	sort.Float64s(sortedAll)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
		agg, err := Quantile(context.Background(), x, Subset{}, q)
		if err != nil {
			t.Fatal(err)
		}
		truth := sortedAll[int(q*float64(len(sortedAll)-1))]
		if truth < agg.Lo-1e-9 || truth > agg.Hi+1e-9 {
			t.Fatalf("q=%g: true quantile %g outside [%g, %g]", q, truth, agg.Lo, agg.Hi)
		}
	}
	// Spatially restricted quantile.
	sub := Subset{SpatialLo: 500, SpatialHi: 2500}
	sortedSub := append([]float64(nil), data[500:2500]...)
	sort.Float64s(sortedSub)
	agg, err := Quantile(context.Background(), x, sub, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	truth := sortedSub[(len(sortedSub)-1)/2]
	if truth < agg.Lo-1e-9 || truth > agg.Hi+1e-9 {
		t.Fatalf("subset median %g outside [%g, %g]", truth, agg.Lo, agg.Hi)
	}
}

func TestQuantileValidation(t *testing.T) {
	x := build(t, make([]float64, 100), 4)
	if _, err := Quantile(context.Background(), x, Subset{}, -0.1); err == nil {
		t.Error("negative quantile accepted")
	}
	if _, err := Quantile(context.Background(), x, Subset{}, 1.1); err == nil {
		t.Error("quantile > 1 accepted")
	}
	// Empty subset yields zero aggregate.
	agg, err := Quantile(context.Background(), x, Subset{ValueLo: 50, ValueHi: 60}, 0.5)
	if err != nil || agg.Count != 0 {
		t.Errorf("empty quantile: %+v, %v", agg, err)
	}
}
