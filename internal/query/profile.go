package query

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"insitubits/internal/bitvec"
	"insitubits/internal/codec"
	"insitubits/internal/index"
)

// Cost is the per-operator accounting of an EXPLAIN/ANALYZE plan node. In
// analyze mode the figures are what the executed operator actually touched,
// derived from the physical composition of every operand it consumed; in
// explain mode they are estimates from the per-bin index stats (encoded
// size, cached count, codec) without executing anything.
//
// Word semantics are codec-native: for WAH and Dense, WordsScanned is the
// number of encoded 32-bit words and FillWords/LiteralWords split them by
// kind; for BBC, WordsScanned is the byte stream rounded up to 32-bit words
// while FillWords counts run tokens and LiteralWords literal payload bytes.
// FillSegments is the number of 31-bit segments covered by fill runs — the
// "how much work did compression save" figure.
type Cost struct {
	BinsTouched    int   `json:"bins_touched,omitempty"`
	WordsScanned   int64 `json:"words_scanned,omitempty"`
	FillWords      int64 `json:"fill_words,omitempty"`
	FillSegments   int64 `json:"fill_segments,omitempty"`
	LiteralWords   int64 `json:"literal_words,omitempty"`
	BytesDecoded   int64 `json:"bytes_decoded,omitempty"`
	FallbackMerges int64 `json:"fallback_merges,omitempty"`
	// OutBits/OutWords describe the intermediate bitmap an operator
	// produced (0 for count-only operators that never materialize).
	OutBits  int `json:"out_bits,omitempty"`
	OutWords int `json:"out_words,omitempty"`
	// Rows is the operator's output cardinality (elements selected /
	// counted); estimated in explain mode.
	Rows int64 `json:"rows,omitempty"`
}

// add folds another cost into c (used for rolling children up into parents;
// output-shape fields are kept, not summed).
func (c *Cost) add(o Cost) {
	c.BinsTouched += o.BinsTouched
	c.WordsScanned += o.WordsScanned
	c.FillWords += o.FillWords
	c.FillSegments += o.FillSegments
	c.LiteralWords += o.LiteralWords
	c.BytesDecoded += o.BytesDecoded
	c.FallbackMerges += o.FallbackMerges
}

// Node is one operator of a plan/profile tree.
type Node struct {
	// Op names the operator ("count-range", "or-merge", "and-mask", ...).
	Op string `json:"op"`
	// Detail is a human-oriented qualifier (value range, step pair, ...).
	Detail string `json:"detail,omitempty"`
	// Bin is the index bin a bin-level operator touched, -1 otherwise.
	Bin int `json:"bin"`
	// Codec names the encoding of the bin (or dominant operand) when known.
	Codec string `json:"codec,omitempty"`
	// Cache records the bitmap cache's verdict for this operator ("hit" or
	// "miss"); empty when no cache was consulted (cache disabled, or the
	// operator's result is uncacheable).
	Cache string `json:"cache,omitempty"`
	// Cost is this operator's own accounting, excluding children.
	Cost Cost `json:"cost"`
	// ElapsedNs is the measured wall time, when the operator was timed
	// separately (only the root is timed for most queries).
	ElapsedNs int64   `json:"elapsed_ns,omitempty"`
	Children  []*Node `json:"children,omitempty"`

	// light marks capture-only accounting: operand charges keep the exact
	// word/byte totals (O(1) per operand from the encoded lengths) but skip
	// the Stats/Count composition passes, which each re-scan the full
	// encoding. Explicit ANALYZE and the slow-query log always run full
	// accounting; the flag is inherited root-to-leaf via child/binChild.
	light bool
}

// child appends (and returns) a new child operator. Nil-safe: on a nil
// receiver — the plain, unprofiled execution path — it returns nil, and the
// other nil-safe mutators below keep no-oping down the chain.
func (n *Node) child(op, detail string) *Node {
	if n == nil {
		return nil
	}
	c := &Node{Op: op, Detail: detail, Bin: -1, light: n.light}
	n.Children = append(n.Children, c)
	return c
}

// binChild appends a child operator pinned to an index bin, recording the
// bin's codec and charging one full scan of its encoding. Nil-safe.
func (n *Node) binChild(op string, x *index.Index, b int) *Node {
	if n == nil {
		return nil
	}
	bm := x.Bitmap(b)
	c := &Node{Op: op, Bin: b, Codec: codecName(bm), Cost: n.scanCostOf(bm), light: n.light}
	n.Children = append(n.Children, c)
	return c
}

// addCost folds extra cost into the node's own accounting. Nil-safe.
func (n *Node) addCost(c Cost) {
	if n == nil {
		return
	}
	n.Cost.add(c)
}

// scanOperand charges the node one full scan of an operand bitmap. Nil-safe.
func (n *Node) scanOperand(b bitvec.Bitmap) {
	if n == nil {
		return
	}
	n.Cost.add(n.scanCostOf(b))
}

// setOut records the intermediate bitmap the operator produced. Nil-safe.
func (n *Node) setOut(b bitvec.Bitmap) {
	if n == nil {
		return
	}
	outShape(&n.Cost, b)
	if n.Codec == "" {
		n.Codec = codecName(b)
	}
}

// setRows records the operator's output cardinality. Nil-safe.
func (n *Node) setRows(rows int) {
	if n == nil {
		return
	}
	n.Cost.Rows = int64(rows)
}

// markCache records the cache verdict for this operator. Nil-safe.
func (n *Node) markCache(verdict string) {
	if n == nil {
		return
	}
	n.Cache = verdict
}

// markFallback charges n cross-codec fallback merges. Nil-safe.
func (n *Node) markFallback(count int64) {
	if n == nil {
		return
	}
	n.Cost.FallbackMerges += count
}

// Total returns the node's cost including all descendants.
func (n *Node) Total() Cost {
	t := n.Cost
	for _, c := range n.Children {
		sub := c.Total()
		t.add(sub)
	}
	return t
}

// Profile is the result of an EXPLAIN (estimated, not executed) or ANALYZE
// (executed and measured) query: the operator tree plus query-level
// metadata. It marshals to JSON for the slow-query log and renders as an
// indented tree for the CLI.
type Profile struct {
	// Query is the entry point ("count", "sum", "correlation", ...).
	Query string `json:"query"`
	// Mode is "explain" (estimated) or "analyze" (executed).
	Mode string `json:"mode"`
	// Detail describes the parameters (subset ranges, quantile, ...).
	Detail string `json:"detail,omitempty"`
	// ElapsedNs is the measured wall time of the whole query (analyze) or 0.
	ElapsedNs int64 `json:"elapsed_ns,omitempty"`
	// Err records the query error, if it failed.
	Err string `json:"error,omitempty"`
	// TraceID cross-references the identity trace this query ran under
	// (fetchable from /debug/traces while it stays in the ring), or "".
	TraceID string `json:"trace_id,omitempty"`
	// PlanDigest fingerprints the executable plan the optimizer chose (op,
	// parameters, planner mode, optimized IR shape). The same digest is
	// stamped into workload-log records, so a slow-log entry joins against
	// qlog/replay output by plan identity rather than by timestamp.
	PlanDigest string `json:"plan_digest,omitempty"`
	// Root is the operator tree.
	Root *Node `json:"plan"`
}

// cacheVerdict folds the per-node cache annotations into one query-level
// verdict: "hit" when any operator was answered from the bitmap cache,
// "miss" when the cache was consulted without a hit, "" when no cache was
// in play. Nil-safe.
func (p *Profile) cacheVerdict() string {
	if p == nil {
		return ""
	}
	hit, miss := false, false
	var walk func(*Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		switch n.Cache {
		case "hit":
			hit = true
		case "miss":
			miss = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root)
	switch {
	case hit:
		return "hit"
	case miss:
		return "miss"
	}
	return ""
}

// Modes of a Profile.
const (
	ModeExplain = "explain"
	ModeAnalyze = "analyze"
)

// Elapsed returns the measured duration.
func (p *Profile) Elapsed() time.Duration { return time.Duration(p.ElapsedNs) }

// Total returns the whole plan's aggregated cost.
func (p *Profile) Total() Cost {
	if p == nil || p.Root == nil {
		return Cost{}
	}
	return p.Root.Total()
}

// JSON renders the profile as one JSON document (the slow-query log payload).
func (p *Profile) JSON() json.RawMessage {
	data, err := json.Marshal(p)
	if err != nil {
		return json.RawMessage(fmt.Sprintf("{%q:%q}", "error", err))
	}
	return data
}

// maxRenderedBins caps how many sibling bin-level nodes Render prints per
// parent; the remainder is summarized in one line (the JSON form is never
// truncated).
const maxRenderedBins = 12

// Render returns the profile as an indented operator tree, one operator per
// line with its cost summary — the `bitmapctl explain` output.
func (p *Profile) Render() string {
	if p == nil || p.Root == nil {
		return ""
	}
	var sb strings.Builder
	header := strings.ToUpper(p.Mode)
	fmt.Fprintf(&sb, "%s %s", header, p.Query)
	if p.Detail != "" {
		fmt.Fprintf(&sb, " (%s)", p.Detail)
	}
	if p.ElapsedNs > 0 {
		fmt.Fprintf(&sb, "  [%s]", time.Duration(p.ElapsedNs))
	}
	if p.Err != "" {
		fmt.Fprintf(&sb, "  ERROR: %s", p.Err)
	}
	sb.WriteByte('\n')
	renderNode(&sb, p.Root, "")
	return sb.String()
}

func renderNode(sb *strings.Builder, n *Node, indent string) {
	fmt.Fprintf(sb, "%s%s\n", indent, n.describe())
	binRun := 0 // consecutive bin-level children beyond the render cap
	var skipped Cost
	flush := func() {
		if binRun > 0 {
			fmt.Fprintf(sb, "%s  … +%d more bins  %s\n", indent, binRun, skipped.describe())
			binRun, skipped = 0, Cost{}
		}
	}
	seenBins := 0
	for _, c := range n.Children {
		if c.Bin >= 0 && len(c.Children) == 0 {
			seenBins++
			if seenBins > maxRenderedBins {
				binRun++
				skipped.add(c.Cost)
				continue
			}
		}
		flush()
		renderNode(sb, c, indent+"  ")
	}
	flush()
}

func (n *Node) describe() string {
	var sb strings.Builder
	sb.WriteString(n.Op)
	if n.Bin >= 0 {
		fmt.Fprintf(&sb, " bin=%d", n.Bin)
	}
	if n.Codec != "" {
		fmt.Fprintf(&sb, " codec=%s", n.Codec)
	}
	if n.Cache != "" {
		fmt.Fprintf(&sb, " cache=%s", n.Cache)
	}
	if n.Detail != "" {
		fmt.Fprintf(&sb, " (%s)", n.Detail)
	}
	if s := n.Cost.describe(); s != "" {
		sb.WriteString("  ")
		sb.WriteString(s)
	}
	if n.ElapsedNs > 0 {
		fmt.Fprintf(&sb, "  [%s]", time.Duration(n.ElapsedNs))
	}
	return sb.String()
}

func (c Cost) describe() string {
	var parts []string
	if c.BinsTouched > 0 {
		parts = append(parts, fmt.Sprintf("bins=%d", c.BinsTouched))
	}
	if c.WordsScanned > 0 {
		parts = append(parts, fmt.Sprintf("words=%d (fill=%d lit=%d)", c.WordsScanned, c.FillWords, c.LiteralWords))
	}
	if c.FillSegments > 0 {
		parts = append(parts, fmt.Sprintf("fillsegs=%d", c.FillSegments))
	}
	if c.BytesDecoded > 0 {
		parts = append(parts, fmt.Sprintf("bytes=%d", c.BytesDecoded))
	}
	if c.FallbackMerges > 0 {
		parts = append(parts, fmt.Sprintf("fallback=%d", c.FallbackMerges))
	}
	if c.OutBits > 0 {
		parts = append(parts, fmt.Sprintf("out=%db/%dw", c.OutBits, c.OutWords))
	}
	if c.Rows > 0 {
		parts = append(parts, fmt.Sprintf("rows=%d", c.Rows))
	}
	return strings.Join(parts, " ")
}

// scanCost reads a bitmap's physical composition as the cost of one full
// scan of its encoding — the unit of ANALYZE accounting: an operator that
// consumes a bitmap is charged its complete encoded form.
func scanCost(b bitvec.Bitmap) Cost {
	st := b.Stats()
	return Cost{
		WordsScanned: int64(b.Words()),
		FillWords:    int64(st.FillWords),
		FillSegments: int64(st.FilledSegments),
		LiteralWords: int64(st.LiteralWords),
		BytesDecoded: int64(b.SizeBytes()),
	}
}

// scanCostOf charges one full scan honoring the node's accounting mode: a
// light (capture-only) node keeps the exact words/bytes totals — the fields
// the workload log records — but skips Stats(), which itself re-scans the
// whole encoding to break words into fill/literal classes. That skip is
// what keeps qlog-enabled runs inside the <2% overhead budget; explicit
// ANALYZE and slow-log profiles still take the full composition pass.
func (n *Node) scanCostOf(b bitvec.Bitmap) Cost {
	if n != nil && n.light {
		return Cost{
			WordsScanned: int64(b.Words()),
			BytesDecoded: int64(b.SizeBytes()),
		}
	}
	return scanCost(b)
}

// outShape records the intermediate bitmap an operator materialized.
func outShape(c *Cost, b bitvec.Bitmap) {
	c.OutBits = b.Len()
	c.OutWords = b.Words()
}

// TopK keeps the K slowest profiles seen so far (by elapsed time); the
// in-situ pipeline and the mining CLI use it to embed the slowest
// selection/mining queries in their run reports. Safe for concurrent
// Offer/Profiles. A nil *TopK ignores everything.
type TopK struct {
	mu    sync.Mutex
	k     int
	slow  []*Profile // unordered; smallest elapsed tracked on insert
	count int64
}

// NewTopK returns a recorder keeping the k slowest profiles (k < 1 → 1).
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k}
}

// Offer records p if it ranks among the K slowest. Nil-safe on both sides.
func (t *TopK) Offer(p *Profile) {
	if t == nil || p == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.count++
	if len(t.slow) < t.k {
		t.slow = append(t.slow, p)
		return
	}
	min := 0
	for i, q := range t.slow {
		if q.ElapsedNs < t.slow[min].ElapsedNs {
			min = i
		}
	}
	if p.ElapsedNs > t.slow[min].ElapsedNs {
		t.slow[min] = p
	}
}

// Profiles returns the recorded profiles, slowest first.
func (t *TopK) Profiles() []*Profile {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]*Profile(nil), t.slow...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ElapsedNs > out[j].ElapsedNs })
	return out
}

// Seen returns how many profiles were offered in total.
func (t *TopK) Seen() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// codecName labels a bitmap's encoding for plan nodes.
func codecName(b bitvec.Bitmap) string { return codec.Of(b).String() }
