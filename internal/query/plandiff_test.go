package query

import (
	"context"
	"math/rand"
	"testing"

	"insitubits/internal/binning"
	"insitubits/internal/bitcache"
	"insitubits/internal/bitvec"
	"insitubits/internal/codec"
	"insitubits/internal/index"
)

// The planner/executor differential suite: every entry point, run through
// the cost-based pipeline (with and without a cache), must produce results
// byte-identical — after canonical WAH re-encoding, since the planner may
// legitimately pick a different in-memory codec — to the fixed-order naive
// path (SetPlanner(false)), across all three codecs and mixed-codec
// indices. The naive path is the reference precisely because it predates
// the planner: it shares no ordering, pruning, or caching logic with it.

// naively runs f with the planner disabled and restores it.
func naively(f func()) {
	SetPlanner(false)
	defer SetPlanner(true)
	f()
}

// assertCanonicalEqual fails unless got and want are byte-identical after
// canonical WAH re-encoding, and logically Equal both ways.
func assertCanonicalEqual(t *testing.T, label string, got, want bitvec.Bitmap) {
	t.Helper()
	gw := bitvec.ToVector(got).RawWords()
	ww := bitvec.ToVector(want).RawWords()
	if len(gw) != len(ww) {
		t.Fatalf("%s: canonical encodings differ in length: %d vs %d words", label, len(gw), len(ww))
	}
	for i := range gw {
		if gw[i] != ww[i] {
			t.Fatalf("%s: canonical encodings differ at word %d: %08x vs %08x", label, i, gw[i], ww[i])
		}
	}
	if !got.Equal(want) || !want.Equal(got) {
		t.Fatalf("%s: bitmaps not Equal despite identical canonical bytes", label)
	}
}

// diffSubsets is the fixed subset matrix: value-only, spatial-only, both,
// narrow, unbounded, single-bin, and a provably-empty value range.
func diffSubsets(n int) []Subset {
	return []Subset{
		{},                                   // unbounded
		{ValueLo: 2, ValueHi: 6},             // value only
		{SpatialLo: 100, SpatialHi: n - 100}, // spatial only
		{ValueLo: 1, ValueHi: 7, SpatialLo: 31, SpatialHi: n / 2},       // both
		{ValueLo: 3, ValueHi: 4, SpatialLo: n / 4, SpatialHi: n/4 + 64}, // narrow
		{ValueLo: 100, ValueHi: 200},                                    // provably empty value range
		{ValueLo: 0, ValueHi: 8, SpatialLo: 0, SpatialHi: n},            // explicit full
	}
}

func TestPlannedMatchesNaiveAllCodecs(t *testing.T) {
	n := 31 * 400
	for _, tc := range []struct {
		name string
		id   codec.ID
	}{
		{"wah", codec.WAH}, {"bbc", codec.BBC}, {"dense", codec.Dense}, {"mixed", codec.Auto},
	} {
		t.Run(tc.name, func(t *testing.T) {
			x := explainTestIndex(t, tc.id)
			for _, cache := range []*bitcache.Cache{nil, bitcache.New(1 << 20)} {
				ctx := WithCache(context.Background(), cache)
				mode := "cache-off"
				if cache != nil {
					mode = "cache-on"
				}
				for si, s := range diffSubsets(n) {
					// Twice per subset: with a cache the second run exercises
					// the hit path, which must be just as identical.
					for pass := 0; pass < 2; pass++ {
						got, err := Bits(ctx, x, s)
						if err != nil {
							t.Fatal(err)
						}
						var want bitvec.Bitmap
						naively(func() { want, err = Bits(context.Background(), x, s) })
						if err != nil {
							t.Fatal(err)
						}
						label := mode + " subset " + string(rune('0'+si))
						assertCanonicalEqual(t, label, got, want)

						gotN, err := Count(ctx, x, s)
						if err != nil {
							t.Fatal(err)
						}
						var wantN int
						naively(func() { wantN, err = Count(context.Background(), x, s) })
						if err != nil {
							t.Fatal(err)
						}
						if gotN != wantN {
							t.Fatalf("%s: Count %d != naive %d", label, gotN, wantN)
						}
					}
				}
			}
		})
	}
}

func TestPlannedAggregatesMatchNaive(t *testing.T) {
	x := explainTestIndex(t, codec.Auto)
	n := x.N()
	ctx := WithCache(context.Background(), bitcache.New(1<<20))
	for _, s := range diffSubsets(n) {
		gotSum, err1 := Sum(ctx, x, s)
		gotMean, err2 := Mean(ctx, x, s)
		gotQ, err3 := Quantile(ctx, x, s, 0.5)
		gotMin, gotMax, err4 := MinMax(ctx, x, s)
		var wantSum, wantMean, wantQ, wantMin, wantMax Aggregate
		var werr1, werr2, werr3, werr4 error
		naively(func() {
			wantSum, werr1 = Sum(context.Background(), x, s)
			wantMean, werr2 = Mean(context.Background(), x, s)
			wantQ, werr3 = Quantile(context.Background(), x, s, 0.5)
			wantMin, wantMax, werr4 = MinMax(context.Background(), x, s)
		})
		for i, pair := range []struct{ e1, e2 error }{{err1, werr1}, {err2, werr2}, {err3, werr3}, {err4, werr4}} {
			if (pair.e1 == nil) != (pair.e2 == nil) {
				t.Fatalf("op %d: error mismatch: %v vs %v", i, pair.e1, pair.e2)
			}
		}
		if gotSum != wantSum || gotMean != wantMean || gotQ != wantQ || gotMin != wantMin || gotMax != wantMax {
			t.Fatalf("subset %+v: aggregates diverge:\n planned %+v %+v %+v %+v %+v\n naive   %+v %+v %+v %+v %+v",
				s, gotSum, gotMean, gotQ, gotMin, gotMax, wantSum, wantMean, wantQ, wantMin, wantMax)
		}
	}
}

func TestPlannedCorrelationMatchesNaive(t *testing.T) {
	n := 31 * 300
	m, err := binning.NewUniform(0, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	da := explainTestData(n)
	db := make([]float64, n)
	for i := range db {
		db[i] = float64((i/97 + i%5) % 8)
	}
	for _, ids := range [][2]codec.ID{{codec.WAH, codec.WAH}, {codec.Dense, codec.BBC}, {codec.Auto, codec.Auto}} {
		xa := index.BuildCodec(da, m, ids[0])
		xb := index.BuildCodec(db, m, ids[1])
		ctx := WithCache(context.Background(), bitcache.New(1<<20))
		for _, sa := range []Subset{{}, {ValueLo: 1, ValueHi: 6}, {ValueLo: 2, ValueHi: 7, SpatialLo: 62, SpatialHi: n - 62}} {
			// The spatial range applies to both variables, so it must match.
			sb := Subset{ValueLo: 0, ValueHi: 5, SpatialLo: sa.SpatialLo, SpatialHi: sa.SpatialHi}
			for pass := 0; pass < 2; pass++ { // second pass hits cached masks
				got, err := Correlation(ctx, xa, xb, sa, sb)
				if err != nil {
					t.Fatal(err)
				}
				var want struct {
					p   interface{}
					err error
				}
				naively(func() {
					p, e := Correlation(context.Background(), xa, xb, sa, sb)
					want.p, want.err = p, e
				})
				if want.err != nil {
					t.Fatal(want.err)
				}
				if got != want.p {
					t.Fatalf("codecs %v pass %d: correlation diverges:\n planned %+v\n naive   %+v", ids, pass, got, want.p)
				}
			}
		}
	}
}

// TestPlanDiffFuzz is the randomized smoke the `make plan-diff` target runs:
// random data, codecs, and subsets through a shared cache, always compared
// byte-for-byte against the naive path.
func TestPlanDiffFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, err := binning.NewUniform(0, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	cache := bitcache.New(1 << 20)
	ctx := WithCache(context.Background(), cache)
	codecs := []codec.ID{codec.WAH, codec.BBC, codec.Dense, codec.Auto}
	for iter := 0; iter < 40; iter++ {
		n := 64 + rng.Intn(4096)
		data := make([]float64, n)
		runVal := float64(rng.Intn(16))
		for i := range data {
			if rng.Intn(20) == 0 { // new run value: fill/literal mixtures
				runVal = float64(rng.Intn(16))
			}
			if rng.Intn(8) == 0 {
				data[i] = float64(rng.Intn(16)) // scattered noise
			} else {
				data[i] = runVal
			}
		}
		x := index.BuildCodec(data, m, codecs[rng.Intn(len(codecs))])
		s := Subset{}
		if rng.Intn(3) > 0 {
			lo := float64(rng.Intn(16))
			s.ValueLo, s.ValueHi = lo, lo+float64(1+rng.Intn(8))
		}
		if rng.Intn(3) > 0 {
			lo := rng.Intn(n)
			s.SpatialLo, s.SpatialHi = lo, lo+1+rng.Intn(n-lo)
		}
		got, err := Bits(ctx, x, s)
		if err != nil {
			t.Fatal(err)
		}
		var want bitvec.Bitmap
		naively(func() { want, err = Bits(context.Background(), x, s) })
		if err != nil {
			t.Fatal(err)
		}
		assertCanonicalEqual(t, "fuzz iter", got, want)
	}
	if st := cache.Stats(); st.Hits+st.Misses == 0 {
		t.Fatal("fuzz never consulted the cache")
	}
}

// TestCacheGenerationInvalidationMidStream simulates the in-situ pipeline
// publishing a new step in the middle of a query stream: cached results for
// the superseded index generation are invalidated, and queries against the
// re-published index never see stale bitmaps (its new generation makes the
// old keys unreachable even before the invalidation sweep runs).
func TestCacheGenerationInvalidationMidStream(t *testing.T) {
	cache := bitcache.New(1 << 20)
	ctx := WithCache(context.Background(), cache)
	x := explainTestIndex(t, codec.WAH)
	s := Subset{ValueLo: 2, ValueHi: 6}

	v1, err := Bits(ctx, x, s) // cold: miss + store
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Bits(ctx, x, s); err != nil { // warm: hit
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatalf("expected a warm hit, stats %+v", st)
	}
	oldGen := x.Generation()

	// "Publish a new step": the index is re-encoded (Recode stamps a fresh
	// generation, exactly as a newly built step index would carry one) and
	// the pipeline invalidates the superseded generation.
	x.Recode(codec.Dense)
	if x.Generation() == oldGen {
		t.Fatal("Recode did not bump the index generation")
	}
	cache.InvalidateGeneration(oldGen)
	if st := cache.Stats(); st.Invalidations == 0 {
		t.Fatalf("expected invalidations, stats %+v", st)
	}

	preMisses := cache.Stats().Misses
	v2, err := Bits(ctx, x, s) // must recompute under the new generation
	if err != nil {
		t.Fatal(err)
	}
	if cache.Stats().Misses == preMisses {
		t.Fatal("query after publish served a stale cached bitmap")
	}
	assertCanonicalEqual(t, "pre/post publish", v2, v1) // same logical data either way

	var want bitvec.Bitmap
	naively(func() { want, err = Bits(context.Background(), x, s) })
	if err != nil {
		t.Fatal(err)
	}
	assertCanonicalEqual(t, "post-publish vs naive", v2, want)
}

// TestPlannerExplainShowsDecisions locks in the user-visible optimizer
// output: plan-order notes and, under ANALYZE with a cache, per-node
// hit/miss annotations.
func TestPlannerExplainShowsDecisions(t *testing.T) {
	x := explainTestIndex(t, codec.WAH)
	s := Subset{ValueLo: 1, ValueHi: 7, SpatialLo: 31, SpatialHi: x.N() - 31}
	prof, err := Explain(x, s, OpBits)
	if err != nil {
		t.Fatal(err)
	}
	if !containsNote(prof.Root, "most-selective-first") {
		t.Fatalf("EXPLAIN lost the operand-order note:\n%s", prof.Render())
	}

	ctx := WithCache(context.Background(), bitcache.New(1<<20))
	if _, _, err := BitsAnalyze(ctx, x, s); err != nil {
		t.Fatal(err)
	}
	_, p2, err := BitsAnalyze(ctx, x, s)
	if err != nil {
		t.Fatal(err)
	}
	if !hasCacheVerdict(p2.Root, "hit") {
		t.Fatalf("warm ANALYZE shows no cache hit:\n%s", p2.Render())
	}
}

func containsNote(n *Node, sub string) bool {
	if n == nil {
		return false
	}
	if len(sub) > 0 && len(n.Detail) >= len(sub) {
		for i := 0; i+len(sub) <= len(n.Detail); i++ {
			if n.Detail[i:i+len(sub)] == sub {
				return true
			}
		}
	}
	for _, c := range n.Children {
		if containsNote(c, sub) {
			return true
		}
	}
	return false
}

func hasCacheVerdict(n *Node, verdict string) bool {
	if n == nil {
		return false
	}
	if n.Cache == verdict {
		return true
	}
	for _, c := range n.Children {
		if hasCacheVerdict(c, verdict) {
			return true
		}
	}
	return false
}
