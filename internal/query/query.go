// Package query implements the bitmap-only analyses the paper builds on
// (§2.2, §4.1, citing the authors' companion work [2, 30, 38, 39]):
// value/spatial subset selection, approximate aggregation with rigorous
// bin-edge error bounds, interactive correlation queries over subsets, and
// incomplete-data handling via validity masks. Everything here consumes
// only indices — the raw data may already have been discarded by the
// in-situ pipeline.
package query

import (
	"context"
	"fmt"
	"math"

	"insitubits/internal/bitvec"
	"insitubits/internal/index"
	"insitubits/internal/metrics"
)

// Subset selects elements by value range and/or element (spatial) range.
// Zero values mean "unbounded": an all-zero Subset selects everything.
type Subset struct {
	// ValueLo/ValueHi restrict to elements whose value lies in
	// [ValueLo, ValueHi) at bin granularity; active when ValueHi > ValueLo.
	ValueLo, ValueHi float64
	// SpatialLo/SpatialHi restrict to element positions [SpatialLo,
	// SpatialHi); active when SpatialHi > SpatialLo. With Z-order layouts
	// this is an axis-aligned block of the domain.
	SpatialLo, SpatialHi int
}

func (s Subset) hasValue() bool   { return s.ValueHi > s.ValueLo }
func (s Subset) hasSpatial() bool { return s.SpatialHi > s.SpatialLo }

func (s Subset) validate(n int) error {
	if s.hasSpatial() && (s.SpatialLo < 0 || s.SpatialHi > n) {
		return fmt.Errorf("query: spatial range [%d,%d) outside [0,%d)", s.SpatialLo, s.SpatialHi, n)
	}
	return nil
}

// spatialBounds returns the effective element range.
func (s Subset) spatialBounds(n int) (lo, hi int) {
	if s.hasSpatial() {
		return s.SpatialLo, s.SpatialHi
	}
	return 0, n
}

// Bits materializes the subset as a bitvector over the index's elements.
//
// Like every query entry point, Bits takes a context: when it carries a
// trace span (or a process-wide trace recorder is installed), the query
// records an identity-carrying span tree retrievable from /debug/traces.
// Pass context.Background() when tracing is irrelevant — the disabled
// path is a single atomic load, covered by the gated overhead guard.
func Bits(ctx context.Context, x *index.Index, s Subset) (bitvec.Bitmap, error) {
	ctx, sp, end := begin(ctx, "query.bits", tel.bits, x)
	defer end()
	if profiled() {
		v, _, err := bitsAnalyze(ctx, x, s, captureOnly())
		return v, err
	}
	return bitsImpl(newExecutor(ctx), x, s, nil, sp)
}

func onesVector(n int) *bitvec.Vector {
	var a bitvec.Appender
	full := n / bitvec.SegmentBits
	a.AppendFill(1, full)
	if rem := n - full*bitvec.SegmentBits; rem > 0 {
		a.AppendPartial(uint32(1)<<uint(rem)-1, rem)
	}
	return a.Vector()
}

// rangeVector builds the indicator of [lo, hi): solid segments become fill
// runs (merged by the appender), only the two boundary segments are built
// bitwise.
func rangeVector(n, lo, hi int) *bitvec.Vector {
	var a bitvec.Appender
	for base := 0; base < n; base += bitvec.SegmentBits {
		width := bitvec.SegmentBits
		if base+width > n {
			width = n - base
		}
		end := base + width
		switch {
		case end <= lo || base >= hi: // fully outside
			if width == bitvec.SegmentBits {
				a.AppendFill(0, 1)
			} else {
				a.AppendPartial(0, width)
			}
		case base >= lo && end <= hi: // fully inside
			if width == bitvec.SegmentBits {
				a.AppendFill(1, 1)
			} else {
				a.AppendPartial(uint32(1)<<uint(width)-1, width)
			}
		default: // boundary segment
			var seg uint32
			for j := 0; j < width; j++ {
				if p := base + j; p >= lo && p < hi {
					seg |= 1 << uint(j)
				}
			}
			a.AppendPartial(seg, width)
		}
	}
	return a.Vector()
}

// Aggregate is the result of an approximate aggregation: the estimate uses
// bin midpoints, and [Lo, Hi] are *rigorous* bounds derived from bin edges
// — the true (full-data) value is guaranteed to lie inside them, which is
// the form of approximation the paper's companion aggregation work trades
// for never touching the raw data.
type Aggregate struct {
	Count    int
	Estimate float64
	Lo, Hi   float64
}

// Count returns the exact number of subset elements (counting is exact on
// bitmaps; only value reconstruction is approximate).
func Count(ctx context.Context, x *index.Index, s Subset) (int, error) {
	ctx, sp, end := begin(ctx, "query.count", tel.count, x)
	defer end()
	if profiled() {
		n, _, err := countAnalyze(ctx, x, s, captureOnly())
		return n, err
	}
	return countImpl(x, s, nil, sp)
}

// binSelected reports whether bin b overlaps the value range.
func (s Subset) binSelected(x *index.Index, b int) bool {
	if !s.hasValue() {
		return true
	}
	return x.Mapper().High(b) > s.ValueLo && x.Mapper().Low(b) < s.ValueHi
}

// Sum estimates the subset's value sum.
func Sum(ctx context.Context, x *index.Index, s Subset) (Aggregate, error) {
	ctx, sp, end := begin(ctx, "query.sum", tel.sum, x)
	defer end()
	if profiled() {
		agg, _, err := sumAnalyze(ctx, x, s, captureOnly())
		return agg, err
	}
	return sumImpl(x, s, nil, sp)
}

// SumMasked aggregates the values of the elements selected by an arbitrary
// bitvector mask — the building block for analyses whose selections are
// produced by bitwise combinations (subgroup discovery, incomplete data).
func SumMasked(ctx context.Context, x *index.Index, mask bitvec.Bitmap) (Aggregate, error) {
	ctx, sp, end := begin(ctx, "query.sum-masked", tel.masked, x)
	defer end()
	if profiled() {
		agg, _, err := sumMaskedAnalyze(ctx, x, mask, captureOnly())
		return agg, err
	}
	return sumMaskedImpl(x, mask, nil, sp)
}

// MeanMasked is SumMasked divided by the selected count.
func MeanMasked(ctx context.Context, x *index.Index, mask bitvec.Bitmap) (Aggregate, error) {
	sum, err := SumMasked(ctx, x, mask)
	if err != nil || sum.Count == 0 {
		return Aggregate{}, err
	}
	n := float64(sum.Count)
	return Aggregate{Count: sum.Count, Estimate: sum.Estimate / n, Lo: sum.Lo / n, Hi: sum.Hi / n}, nil
}

// Mean estimates the subset's average value.
func Mean(ctx context.Context, x *index.Index, s Subset) (Aggregate, error) {
	ctx, sp, end := begin(ctx, "query.mean", tel.sum, x)
	defer end()
	if profiled() {
		agg, _, err := meanAnalyze(ctx, x, s, captureOnly())
		return agg, err
	}
	return meanImpl(x, s, nil, sp)
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of the subset's values,
// bounded by the edges of the bin the quantile falls into: the true
// quantile of the discarded data is guaranteed inside [Lo, Hi].
func Quantile(ctx context.Context, x *index.Index, s Subset, q float64) (Aggregate, error) {
	ctx, sp, end := begin(ctx, "query.quantile", tel.quantile, x)
	defer end()
	if profiled() {
		agg, _, err := quantileAnalyze(ctx, x, s, q, captureOnly())
		return agg, err
	}
	return quantileImpl(x, s, q, nil, sp)
}

// MinMax returns bin-edge bounds on the subset's extreme values: the true
// minimum lies in [Aggregate.Lo, Aggregate.Estimate] of min (and similarly
// for max), where Estimate is the midpoint of the extreme occupied bin.
func MinMax(ctx context.Context, x *index.Index, s Subset) (min, max Aggregate, err error) {
	ctx, sp, end := begin(ctx, "query.minmax", tel.minmax, x)
	defer end()
	if profiled() {
		min, max, _, err := minMaxAnalyze(ctx, x, s, captureOnly())
		return min, max, err
	}
	return minMaxImpl(x, s, nil, sp)
}

// Correlation answers the paper's §4.1 interactive correlation query: the
// mutual information (and related metrics) between two variables restricted
// to a subset — value ranges apply per variable, the spatial range applies
// to both. It touches only bitmaps.
func Correlation(ctx context.Context, xa, xb *index.Index, sa, sb Subset) (metrics.Pair, error) {
	ctx, sp, end := begin(ctx, "query.correlation", tel.correlation, xa)
	defer end()
	if profiled() {
		pair, _, err := correlationAnalyze(ctx, xa, xb, sa, sb, captureOnly())
		return pair, err
	}
	return correlationImpl(newExecutor(ctx), xa, xb, sa, sb, nil, sp)
}

// Masked wraps an index together with a validity bitvector for
// incomplete-data analysis (companion work [2]): positions whose bit is 0
// are missing and excluded from every aggregate.
type Masked struct {
	X     *index.Index
	Valid bitvec.Bitmap
}

// NewMasked pairs an index with its validity mask.
func NewMasked(x *index.Index, valid bitvec.Bitmap) (*Masked, error) {
	if valid.Len() != x.N() {
		return nil, fmt.Errorf("query: mask covers %d bits for %d elements", valid.Len(), x.N())
	}
	return &Masked{X: x, Valid: valid}, nil
}

// Missing returns how many elements are invalid.
func (m *Masked) Missing() int { return m.X.N() - m.Valid.Count() }

// Sum aggregates over valid elements only.
func (m *Masked) Sum(ctx context.Context, s Subset) (Aggregate, error) {
	ctx, sp, end := begin(ctx, "query.masked-sum", tel.masked, m.X)
	defer end()
	if profiled() {
		agg, _, err := m.sumAnalyze(ctx, s, captureOnly())
		return agg, err
	}
	return maskedSumImpl(m, s, nil, sp)
}

// Impute estimates missing values from the valid value distribution inside
// a window around each gap (a simplified form of the bitmap-based
// imputation of [2]): the estimate for a missing position is the mean
// estimate of the valid elements in the surrounding window.
func (m *Masked) Impute(window int) ([]float64, error) {
	if window < 1 {
		return nil, fmt.Errorf("query: imputation window %d must be positive", window)
	}
	n := m.X.N()
	out := make([]float64, n)
	// Valid elements reconstruct to their bin midpoint.
	ids := m.X.BinIDs(nil)
	mid := make([]float64, m.X.Bins())
	for b := 0; b < m.X.Bins(); b++ {
		mid[b] = (m.X.Mapper().Low(b) + m.X.Mapper().High(b)) / 2
	}
	valid := m.Valid
	for i := 0; i < n; i++ {
		if valid.Get(i) {
			out[i] = mid[ids[i]]
			continue
		}
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > n {
			hi = n
		}
		sum, cnt := 0.0, 0
		for j := lo; j < hi; j++ {
			if valid.Get(j) {
				sum += mid[ids[j]]
				cnt++
			}
		}
		if cnt > 0 {
			out[i] = sum / float64(cnt)
		} else {
			out[i] = math.NaN() // no information in the window
		}
	}
	return out, nil
}
