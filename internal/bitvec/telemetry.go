package bitvec

import "insitubits/internal/telemetry"

// tel holds the package's telemetry handles. The hot loops never touch
// them: appenders count words into plain struct fields and flush here once
// per built vector (see Appender.flushTelemetry), and bitwise ops record
// one event per operation. All handles are nil-safe, so
// SetTelemetry(nil) disables the package at (almost) zero cost.
var tel struct {
	vectors   *telemetry.Counter // vectors finalized via Appender.Vector
	bits      *telemetry.Counter // logical bits those vectors cover
	litWords  *telemetry.Counter // literal words appended
	fillWords *telemetry.Counter // fill words appended (one per run, not per segment)
	opAnd     *telemetry.Counter
	opOr      *telemetry.Counter
	opXor     *telemetry.Counter
	opAndNot  *telemetry.Counter
	opNot     *telemetry.Counter
}

// SetTelemetry (re)binds the package's instruments to a registry; nil
// disables them. Bound to telemetry.Default at init.
func SetTelemetry(r *telemetry.Registry) {
	tel.vectors = r.Counter("bitvec.vectors_built")
	tel.bits = r.Counter("bitvec.bits_appended")
	tel.litWords = r.Counter("bitvec.literal_words")
	tel.fillWords = r.Counter("bitvec.fill_words")
	tel.opAnd = r.Counter("bitvec.ops_and")
	tel.opOr = r.Counter("bitvec.ops_or")
	tel.opXor = r.Counter("bitvec.ops_xor")
	tel.opAndNot = r.Counter("bitvec.ops_andnot")
	tel.opNot = r.Counter("bitvec.ops_not")
}

func init() { SetTelemetry(telemetry.Default) }

// countOp records one bitwise operation of the given kind.
func countOp(k opKind) {
	switch k {
	case opAnd:
		tel.opAnd.Inc()
	case opOr:
		tel.opOr.Inc()
	case opXor:
		tel.opXor.Inc()
	default:
		tel.opAndNot.Inc()
	}
}

// flushTelemetry folds the appender's private word tallies into the package
// counters; called once per finalized vector (Appender.Vector).
func (a *Appender) flushTelemetry() {
	if tel.vectors == nil {
		a.lits, a.fills = 0, 0
		return
	}
	tel.vectors.Inc()
	tel.bits.Add(int64(a.nbits))
	tel.litWords.Add(int64(a.lits))
	tel.fillWords.Add(int64(a.fills))
	a.lits, a.fills = 0, 0
}
