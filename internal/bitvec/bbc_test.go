package bitvec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBBCRoundTripProperty(t *testing.T) {
	f := func(bs boolsValue) bool {
		raw := make([]byte, (len(bs)+7)/8)
		for i, b := range bs {
			if b {
				raw[i/8] |= 1 << uint(i%8)
			}
		}
		c := BBCFromBytes(raw, len(bs))
		return bytes.Equal(c.Bytes(), raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBBCCountMatchesVector(t *testing.T) {
	f := func(bs boolsValue) bool {
		v := FromBools(bs)
		c := BBCFromVector(v)
		return c.Count() == v.Count() && c.Len() == v.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBBCAndMatchesWAH(t *testing.T) {
	f := func(p pairValue) bool {
		va, vb := FromBools(p.A), FromBools(p.B)
		ca, cb := BBCFromVector(va), BBCFromVector(vb)
		return ca.And(cb).Count() == va.AndCount(vb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBBCCompressesSparse(t *testing.T) {
	n := 1 << 16
	raw := make([]byte, n/8)
	raw[0] = 1
	raw[len(raw)-1] = 0x80
	c := BBCFromBytes(raw, n)
	if c.SizeBytes() > 32 {
		t.Fatalf("sparse BBC size %dB, expected tiny", c.SizeBytes())
	}
	if c.Count() != 2 {
		t.Fatalf("Count=%d want 2", c.Count())
	}
}

func TestBBCLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BBCFromBytes(make([]byte, 2), 100)
}

func TestBBCLiteralChunkLimit(t *testing.T) {
	// >128 consecutive non-run bytes must split into multiple literal chunks.
	r := rand.New(rand.NewSource(9))
	raw := make([]byte, 400)
	for i := range raw {
		b := byte(r.Intn(254)) + 1
		if b == 0xFF {
			b = 0xFE
		}
		raw[i] = b
	}
	c := BBCFromBytes(raw, len(raw)*8)
	if !bytes.Equal(c.Bytes(), raw) {
		t.Fatal("long literal round trip failed")
	}
}
