package bitvec

import "fmt"

// Concat stitches vectors end to end, merging fill runs at the seams. Every
// vector except the last must end on a 31-bit segment boundary — the
// parallel in-situ build guarantees this by aligning sub-block sizes to
// SegmentBits — so the compressed words can be joined without re-encoding.
// This is how per-core "distributed bitmaps" (paper §2.3, Figure 2) are
// assembled into a single logical vector for global analysis.
func Concat(parts ...Bitmap) (*Vector, error) {
	if len(parts) == 0 {
		return &Vector{}, nil
	}
	var a Appender
	for i, part := range parts {
		p := ToVector(part)
		if i < len(parts)-1 && p.nbits%SegmentBits != 0 {
			return nil, fmt.Errorf("bitvec: Concat part %d ends mid-segment (%d bits)", i, p.nbits)
		}
		for _, w := range p.words {
			if w&fillFlag != 0 {
				a.appendFill((w&fillValue)>>30, int(w&countMask))
			} else {
				a.words = append(a.words, w)
			}
		}
		a.nbits += p.nbits
	}
	return a.Vector(), nil
}

// MustConcat is Concat that panics on misaligned input; for callers that
// construct the parts themselves and have already enforced alignment.
func MustConcat(parts ...Bitmap) *Vector {
	v, err := Concat(parts...)
	if err != nil {
		panic(err)
	}
	return v
}
