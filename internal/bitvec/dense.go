package bitvec

import (
	"fmt"
	"math/bits"
)

// Dense is the uncompressed codec: one 31-bit segment per 32-bit word, in
// the same segment layout as WAH literals but with no fill words. For bins
// whose density is high enough that fill runs never form (the adaptive
// policy's ≥50% regime), Dense trades the ~32/31 storage overhead for
// branch-free word-at-a-time operations.
//
// Invariants: len(words) == ceil(nbits/31); bit 31 of every word is clear;
// bits of the final word beyond nbits are zero. The zero value is an empty
// bitmap.
type Dense struct {
	words []uint32
	nbits int
}

// DenseFromBitmap re-encodes any bitmap as Dense. A *Dense passes through
// unchanged (bitmaps are immutable, so sharing is safe).
func DenseFromBitmap(b Bitmap) *Dense {
	if d, ok := b.(*Dense); ok {
		return d
	}
	n := b.Len()
	segs := (n + SegmentBits - 1) / SegmentBits
	d := &Dense{words: make([]uint32, segs), nbits: n}
	pos := 0
	var it bmIter
	it.reset(b.Runs())
	for it.ok && pos < segs {
		if it.run.Fill {
			if it.run.Bit != 0 {
				end := pos + it.run.N
				if end > segs {
					end = segs
				}
				for i := pos; i < end; i++ {
					d.words[i] = literalMask
				}
			}
			pos += it.run.N
			it.consume(it.run.N)
			continue
		}
		d.words[pos] = it.run.Word & literalMask
		pos++
		it.consume(1)
	}
	d.maskTail()
	return d
}

// DenseFromRawWords reconstructs a Dense bitmap from stored words,
// validating the layout invariants; used by the store reader.
func DenseFromRawWords(words []uint32, nbits int) (*Dense, error) {
	if nbits < 0 {
		return nil, fmt.Errorf("bitvec: negative bit length %d", nbits)
	}
	segs := (nbits + SegmentBits - 1) / SegmentBits
	if len(words) != segs {
		return nil, fmt.Errorf("bitvec: dense encoding has %d words, want %d for %d bits", len(words), segs, nbits)
	}
	for i, w := range words {
		if w&^literalMask != 0 {
			return nil, fmt.Errorf("bitvec: dense word %d has bit 31 set (%#x)", i, w)
		}
	}
	if rem := nbits % SegmentBits; rem != 0 && segs > 0 {
		if words[segs-1]&^(uint32(1)<<uint(rem)-1) != 0 {
			return nil, fmt.Errorf("bitvec: dense encoding has set bits beyond length %d", nbits)
		}
	}
	return &Dense{words: append([]uint32(nil), words...), nbits: nbits}, nil
}

// maskTail zeroes the final word's bits beyond the logical length.
func (d *Dense) maskTail() {
	if rem := d.nbits % SegmentBits; rem != 0 && len(d.words) > 0 {
		d.words[len(d.words)-1] &= uint32(1)<<uint(rem) - 1
	}
}

// Len returns the logical number of bits.
func (d *Dense) Len() int { return d.nbits }

// Words returns the number of physical 32-bit words.
func (d *Dense) Words() int { return len(d.words) }

// SizeBytes returns the physical size in bytes.
func (d *Dense) SizeBytes() int { return 4 * len(d.words) }

// RawWords exposes the underlying words (read-only; used by store).
func (d *Dense) RawWords() []uint32 { return d.words }

// Count returns the number of set bits; the tail invariant makes this a
// plain popcount sweep with no masking.
func (d *Dense) Count() int {
	total := 0
	for _, w := range d.words {
		total += bits.OnesCount32(w)
	}
	return total
}

// CountRange returns the number of set bits in [from, to).
func (d *Dense) CountRange(from, to int) int {
	if from < 0 || to > d.nbits || from > to {
		panic(fmt.Sprintf("bitvec: CountRange[%d,%d) out of range [0,%d]", from, to, d.nbits))
	}
	if from == to {
		return 0
	}
	total := 0
	s0, s1 := from/SegmentBits, (to-1)/SegmentBits
	for s := s0; s <= s1; s++ {
		w := d.words[s]
		base := s * SegmentBits
		lo := 0
		if from > base {
			lo = from - base
		}
		hi := SegmentBits
		if to < base+SegmentBits {
			hi = to - base
		}
		w >>= uint(lo)
		w &= uint32(1)<<uint(hi-lo) - 1
		total += bits.OnesCount32(w)
	}
	return total
}

// CountUnits reports the set-bit count of each unitSize-bit unit.
func (d *Dense) CountUnits(unitSize int) []int { return genericCountUnits(d, unitSize) }

// Get reports the value of logical bit i.
func (d *Dense) Get(i int) bool {
	if i < 0 || i >= d.nbits {
		panic(fmt.Sprintf("bitvec: Get(%d) out of range [0,%d)", i, d.nbits))
	}
	return d.words[i/SegmentBits]&(1<<uint(i%SegmentBits)) != 0
}

// Iterate calls fn for each set bit in ascending order; fn returning false
// stops early.
func (d *Dense) Iterate(fn func(pos int) bool) {
	for s, w := range d.words {
		base := s * SegmentBits
		for w != 0 {
			j := bits.TrailingZeros32(w)
			if !fn(base + j) {
				return
			}
			w &= w - 1
		}
	}
}

// WriteIDs stores id into dst at every set-bit position.
func (d *Dense) WriteIDs(dst []int32, id int32) {
	if len(dst) < d.nbits {
		panic(fmt.Sprintf("bitvec: WriteIDs dst of %d for %d bits", len(dst), d.nbits))
	}
	d.Iterate(func(pos int) bool {
		dst[pos] = id
		return true
	})
}

// And returns d AND o; a Dense pair combines word-at-a-time.
func (d *Dense) And(o Bitmap) Bitmap { return d.binaryOp(o, opAnd) }

// Or returns d OR o.
func (d *Dense) Or(o Bitmap) Bitmap { return d.binaryOp(o, opOr) }

// Xor returns d XOR o.
func (d *Dense) Xor(o Bitmap) Bitmap { return d.binaryOp(o, opXor) }

// AndNot returns d AND NOT o.
func (d *Dense) AndNot(o Bitmap) Bitmap { return d.binaryOp(o, opAndNot) }

func (d *Dense) binaryOp(o Bitmap, k opKind) Bitmap {
	od, ok := o.(*Dense)
	if !ok {
		return genericBinary(d, o, k)
	}
	checkLen(d, od)
	countOp(k)
	res := &Dense{words: make([]uint32, len(d.words)), nbits: d.nbits}
	for i := range d.words {
		res.words[i] = k.apply(d.words[i], od.words[i]) & literalMask
	}
	// AndNot/Xor against a shorter tail cannot set bits beyond Len because
	// both tails are zero, so the tail invariant is preserved by apply.
	return res
}

// Not returns the complement of d within its logical length.
func (d *Dense) Not() Bitmap {
	tel.opNot.Inc()
	res := &Dense{words: make([]uint32, len(d.words)), nbits: d.nbits}
	for i, w := range d.words {
		res.words[i] = ^w & literalMask
	}
	res.maskTail()
	return res
}

// AndCount returns Count(d AND o) without materializing the result.
func (d *Dense) AndCount(o Bitmap) int { return d.binaryCount(o, opAnd) }

// OrCount returns Count(d OR o) without materializing the result.
func (d *Dense) OrCount(o Bitmap) int { return d.binaryCount(o, opOr) }

// XorCount returns Count(d XOR o) without materializing the result.
func (d *Dense) XorCount(o Bitmap) int { return d.binaryCount(o, opXor) }

// AndNotCount returns Count(d AND NOT o) without materializing the result.
func (d *Dense) AndNotCount(o Bitmap) int { return d.binaryCount(o, opAndNot) }

func (d *Dense) binaryCount(o Bitmap, k opKind) int {
	od, ok := o.(*Dense)
	if !ok {
		return genericBinaryCount(d, o, k)
	}
	checkLen(d, od)
	total := 0
	for i := range d.words {
		total += bits.OnesCount32(k.apply(d.words[i], od.words[i]) & literalMask)
	}
	return total
}

// Clone returns a deep copy.
func (d *Dense) Clone() Bitmap {
	return &Dense{words: append([]uint32(nil), d.words...), nbits: d.nbits}
}

// Equal reports whether two bitmaps have identical logical contents.
func (d *Dense) Equal(o Bitmap) bool {
	if od, ok := o.(*Dense); ok {
		if d.nbits != od.nbits {
			return false
		}
		for i := range d.words {
			if d.words[i] != od.words[i] {
				return false
			}
		}
		return true
	}
	return genericEqual(d, o)
}

// Stats describes the physical composition; for Dense every word is a
// literal and PhysicalBytes carries the true footprint.
func (d *Dense) Stats() Stats {
	return Stats{
		LiteralWords:  len(d.words),
		Bits:          d.nbits,
		SetBits:       d.Count(),
		PhysicalBytes: d.SizeBytes(),
	}
}

// Runs streams the contents at segment granularity, coalescing consecutive
// all-zero and all-one words into fill runs.
func (d *Dense) Runs() RunReader { return &denseRunReader{words: d.words} }

type denseRunReader struct {
	words []uint32
	pos   int
}

func (r *denseRunReader) NextRun() (Run, bool) {
	if r.pos >= len(r.words) {
		return Run{}, false
	}
	w := r.words[r.pos]
	if w == 0 || w == literalMask {
		// The tail invariant guarantees a partial final segment is never
		// literalMask, so a one-fill here cannot overhang the length.
		j := r.pos + 1
		for j < len(r.words) && r.words[j] == w {
			j++
		}
		run := Run{Fill: true, N: j - r.pos}
		if w == literalMask {
			run.Bit = 1
		}
		r.pos = j
		return run, true
	}
	r.pos++
	return Run{N: 1, Word: w}, true
}

var _ Bitmap = (*Dense)(nil)
