package bitvec

import (
	"math/rand"
	"testing"
)

func TestConcatProperty(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		// Build 1..5 parts; all but the last aligned to SegmentBits.
		nParts := 1 + r.Intn(5)
		var all []bool
		parts := make([]Bitmap, nParts)
		for i := 0; i < nParts; i++ {
			n := r.Intn(10) * SegmentBits
			if i == nParts-1 {
				n += r.Intn(SegmentBits + 1) // last part may be ragged
			}
			bs := make([]bool, n)
			for j := range bs {
				bs[j] = r.Intn(3) == 0
			}
			parts[i] = FromBools(bs)
			all = append(all, bs...)
		}
		got, err := Concat(parts...)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !got.Equal(FromBools(all)) {
			t.Fatalf("trial %d: concat mismatch", trial)
		}
	}
}

func TestConcatMergesBoundaryFills(t *testing.T) {
	zeros := func(nSegs int) *Vector {
		var a Appender
		a.AppendFill(0, nSegs)
		return a.Vector()
	}
	v, err := Concat(zeros(10), zeros(20), zeros(5))
	if err != nil {
		t.Fatal(err)
	}
	if v.Words() != 1 {
		t.Fatalf("boundary fills not merged: %d words (%s)", v.Words(), v.String())
	}
	if v.Len() != 35*SegmentBits {
		t.Fatalf("Len=%d", v.Len())
	}
}

func TestConcatRejectsMisaligned(t *testing.T) {
	ragged := FromBools(make([]bool, 17))
	tail := FromBools(make([]bool, 31))
	if _, err := Concat(ragged, tail); err == nil {
		t.Fatal("misaligned concat accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustConcat did not panic")
		}
	}()
	MustConcat(ragged, tail)
}

func TestConcatEmpty(t *testing.T) {
	v, err := Concat()
	if err != nil || v.Len() != 0 {
		t.Fatalf("empty concat: %v len=%d", err, v.Len())
	}
}
