package bitvec

import "fmt"

// Appender builds a compressed vector incrementally, one 31-bit segment at a
// time, merging runs as it goes. It is the mechanism behind the paper's
// Algorithm 1: a freshly produced segment is classified as all-ones, all-zeros
// or mixed and either extends the trailing fill word or is appended as a new
// fill/literal word, so the vector is never held uncompressed.
//
// The zero value is ready to use.
type Appender struct {
	words   []uint32
	nbits   int
	partial bool // a short final segment has been appended
	// lits/fills tally appended words for telemetry; plain fields so the
	// hot loop never touches shared state (flushed once in Vector).
	lits  int
	fills int
}

// Reset discards all appended content, retaining capacity.
func (a *Appender) Reset() {
	a.words = a.words[:0]
	a.nbits = 0
	a.partial = false
	a.lits, a.fills = 0, 0
}

// Len returns the number of logical bits appended so far.
func (a *Appender) Len() int { return a.nbits }

// AppendSegment appends one full 31-bit segment (bits 0..30 of seg).
// This is the merge step of Algorithm 1: all-ones and all-zeros segments
// extend or start fill words, mixed segments become literals.
func (a *Appender) AppendSegment(seg uint32) {
	a.checkNotPartial()
	seg &= literalMask
	switch seg {
	case literalMask:
		a.appendFill(1, 1)
	case 0:
		a.appendFill(0, 1)
	default:
		a.words = append(a.words, seg)
		a.lits++
	}
	a.nbits += SegmentBits
}

// AppendPartial appends the final, possibly short, segment of a vector:
// the low `width` bits of seg (1..31). Partial segments are stored as
// literals or merged as fills exactly like full ones, but only `width`
// logical bits are accounted for; a partial segment must be the last thing
// appended before Vector is called.
func (a *Appender) AppendPartial(seg uint32, width int) {
	if width <= 0 || width > SegmentBits {
		panic(fmt.Sprintf("bitvec: AppendPartial width %d out of range (0,%d]", width, SegmentBits))
	}
	if width == SegmentBits {
		a.AppendSegment(seg)
		return
	}
	a.checkNotPartial()
	seg &= uint32(1)<<uint(width) - 1
	// A short segment is physically a full word; pad the unused high bits
	// with zeros and record the true logical length.
	if seg == 0 {
		a.appendFill(0, 1)
	} else {
		a.words = append(a.words, seg)
		a.lits++
	}
	a.nbits += width
	a.partial = true
}

// AppendFill appends n consecutive segments of the given bit (0 or 1).
func (a *Appender) AppendFill(bit uint32, n int) {
	if n <= 0 {
		return
	}
	a.checkNotPartial()
	a.appendFill(bit, n)
	a.nbits += n * SegmentBits
}

// checkNotPartial rejects appends after a short final segment: the encoding
// has no way to place bits after a partial word, so continuing would
// silently corrupt positions. (Vector or Reset clears the state.)
func (a *Appender) checkNotPartial() {
	if a.partial {
		panic("bitvec: append after AppendPartial; a partial segment must be the final append")
	}
}

// appendFill merges with a trailing fill word of the same value when possible,
// splitting runs that exceed the 30-bit counter.
func (a *Appender) appendFill(bit uint32, n int) {
	fv := uint32(0)
	if bit != 0 {
		fv = fillValue
	}
	if last := len(a.words) - 1; last >= 0 {
		w := a.words[last]
		if w&fillFlag != 0 && w&fillValue == fv {
			room := maxRun - int(w&countMask)
			if room >= n {
				a.words[last] = w + uint32(n)
				return
			}
			a.words[last] = w + uint32(room)
			n -= room
		}
	}
	for n > maxRun {
		a.words = append(a.words, fillFlag|fv|uint32(maxRun))
		a.fills++
		n -= maxRun
	}
	if n > 0 {
		a.words = append(a.words, fillFlag|fv|uint32(n))
		a.fills++
	}
}

// Vector finalizes the appender and returns the built vector. The appender
// is reset and may be reused.
func (a *Appender) Vector() *Vector {
	a.flushTelemetry()
	v := &Vector{words: a.words, nbits: a.nbits}
	a.words = nil
	a.nbits = 0
	a.partial = false
	return v
}

// Snapshot returns a copy of the current contents without resetting,
// allowing the caller to keep appending (used by the in-situ pipeline to
// publish per-step vectors while a multi-step stream continues).
func (a *Appender) Snapshot() *Vector {
	return &Vector{words: append([]uint32(nil), a.words...), nbits: a.nbits}
}

// SizeBytes reports the current compressed size.
func (a *Appender) SizeBytes() int { return 4 * len(a.words) }
