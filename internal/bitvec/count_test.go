package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func naiveCount(bs []bool, from, to int) int {
	n := 0
	for i := from; i < to; i++ {
		if bs[i] {
			n++
		}
	}
	return n
}

func TestCountProperty(t *testing.T) {
	f := func(bs boolsValue) bool {
		return FromBools(bs).Count() == naiveCount(bs, 0, len(bs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCountRangeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 400; trial++ {
		bs := randomBools(r, 1500)
		v := FromBools(bs)
		if len(bs) == 0 {
			if v.CountRange(0, 0) != 0 {
				t.Fatal("empty CountRange nonzero")
			}
			continue
		}
		from := r.Intn(len(bs) + 1)
		to := from + r.Intn(len(bs)-from+1)
		got := v.CountRange(from, to)
		want := naiveCount(bs, from, to)
		if got != want {
			t.Fatalf("trial %d: CountRange(%d,%d)=%d want %d (len %d)", trial, from, to, got, want, len(bs))
		}
	}
}

func TestCountRangeBounds(t *testing.T) {
	v := FromBools(make([]bool, 10))
	for _, c := range [][2]int{{-1, 5}, {0, 11}, {6, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("CountRange(%d,%d) did not panic", c[0], c[1])
				}
			}()
			v.CountRange(c[0], c[1])
		}()
	}
}

func TestCountUnitsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		bs := randomBools(r, 1500)
		if len(bs) == 0 {
			continue
		}
		v := FromBools(bs)
		unit := 1 + r.Intn(200)
		got := v.CountUnits(unit)
		nUnits := (len(bs) + unit - 1) / unit
		if len(got) != nUnits {
			t.Fatalf("trial %d: %d units, want %d", trial, len(got), nUnits)
		}
		for u := 0; u < nUnits; u++ {
			from := u * unit
			to := from + unit
			if to > len(bs) {
				to = len(bs)
			}
			if want := naiveCount(bs, from, to); got[u] != want {
				t.Fatalf("trial %d: unit %d = %d, want %d", trial, u, got[u], want)
			}
		}
	}
}

func TestAndCountXorCountProperty(t *testing.T) {
	f := func(p pairValue) bool {
		va, vb := FromBools(p.A), FromBools(p.B)
		if va.AndCount(vb) != va.And(vb).Count() {
			return false
		}
		return va.XorCount(vb) == va.Xor(vb).Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAndXorCountSymmetric(t *testing.T) {
	f := func(p pairValue) bool {
		va, vb := FromBools(p.A), FromBools(p.B)
		return va.AndCount(vb) == vb.AndCount(va) && va.XorCount(vb) == vb.XorCount(va)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCountEmptyAndEdges(t *testing.T) {
	empty := FromBools(nil)
	if empty.Count() != 0 || empty.Len() != 0 {
		t.Fatal("empty vector not empty")
	}
	one := FromBools([]bool{true})
	if one.Count() != 1 || one.CountRange(0, 1) != 1 {
		t.Fatal("single-bit vector miscounted")
	}
	// Exactly one segment of ones: stored as a fill, partial masking must
	// still count correctly when the logical length equals the segment.
	seg := make([]bool, SegmentBits)
	for i := range seg {
		seg[i] = true
	}
	v := FromBools(seg)
	if v.Count() != SegmentBits {
		t.Fatalf("Count=%d", v.Count())
	}
	// 32 ones: fill word + partial literal of width 1.
	seg = append(seg, true)
	v = FromBools(seg)
	if v.Count() != 32 {
		t.Fatalf("Count=%d want 32", v.Count())
	}
	if v.CountRange(30, 32) != 2 {
		t.Fatalf("CountRange(30,32)=%d want 2", v.CountRange(30, 32))
	}
}

func BenchmarkAndCountSparse(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	n := 1 << 20
	mk := func() *Vector {
		var idx []int
		for i := 0; i < n; i += 300 + r.Intn(300) {
			idx = append(idx, i)
		}
		return FromIndices(n, idx)
	}
	va, vb := mk(), mk()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va.AndCount(vb)
	}
}

func BenchmarkXorCountDense(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	n := 1 << 20
	bs := make([]bool, n)
	cs := make([]bool, n)
	for i := range bs {
		bs[i] = r.Intn(2) == 0
		cs[i] = r.Intn(2) == 0
	}
	va, vb := FromBools(bs), FromBools(cs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va.XorCount(vb)
	}
}

func TestWriteIDsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for trial := 0; trial < 200; trial++ {
		bs := randomBools(r, 1500)
		v := FromBools(bs)
		dst := make([]int32, len(bs))
		for i := range dst {
			dst[i] = -1
		}
		v.WriteIDs(dst, 7)
		for i, b := range bs {
			want := int32(-1)
			if b {
				want = 7
			}
			if dst[i] != want {
				t.Fatalf("trial %d: dst[%d]=%d want %d", trial, i, dst[i], want)
			}
		}
	}
}

func TestWriteIDsShortDstPanics(t *testing.T) {
	v := FromBools(make([]bool, 40))
	defer func() {
		if recover() == nil {
			t.Fatal("short dst accepted")
		}
	}()
	v.WriteIDs(make([]int32, 10), 1)
}
