package bitvec

import "fmt"

// Bitmap is the codec-independent compressed bitvector every analysis layer
// operates on. Three implementations live in this package: the WAH *Vector
// (31-bit word-aligned runs), the byte-aligned *BBC, and the uncompressed
// *Dense fast path. All of them expose the same logical contents through
// Runs(), a 31-bit-segment-granular run iterator, which is what lets two
// bitmaps of different codecs be combined without decompressing either.
//
// Binary operations accept any Bitmap: same-codec pairs dispatch to the
// codec's native compressed-form implementation; mixed pairs merge through
// the run iterators and yield a WAH result (the universal intermediate).
type Bitmap interface {
	// Len is the logical number of bits.
	Len() int
	// Words is the number of 32-bit words the physical encoding occupies
	// (rounded up for byte-aligned codecs).
	Words() int
	// SizeBytes is the physical encoded size in bytes.
	SizeBytes() int

	Count() int
	CountRange(from, to int) int
	CountUnits(unitSize int) []int
	Get(i int) bool
	Iterate(fn func(pos int) bool)
	WriteIDs(dst []int32, id int32)

	And(o Bitmap) Bitmap
	Or(o Bitmap) Bitmap
	Xor(o Bitmap) Bitmap
	AndNot(o Bitmap) Bitmap
	Not() Bitmap
	AndCount(o Bitmap) int
	OrCount(o Bitmap) int
	XorCount(o Bitmap) int
	AndNotCount(o Bitmap) int

	Clone() Bitmap
	Equal(o Bitmap) bool
	Stats() Stats

	// Runs streams the logical contents as fill runs and literal segments
	// (see Run). Fresh reader per call; concurrent readers are independent.
	Runs() RunReader
}

// Run is one piece of a bitmap's contents at 31-bit segment granularity:
// either a run of N identical fill segments (Fill true, Bit 0 or 1) or a
// single literal segment (Fill false, N == 1, payload in Word's low 31
// bits). The runs of a bitmap cover exactly ceil(Len/31) segments; bits of
// the final segment beyond Len are zero except under a trailing zero-fill,
// whose span may overhang the logical length (consumers mask by Len).
type Run struct {
	Fill bool
	Bit  uint32 // fill bit (0 or 1) when Fill
	N    int    // segments covered; always 1 for literals
	Word uint32 // 31-bit literal payload when !Fill
}

// RunReader pulls a bitmap's runs in order. It is a pull iterator (not a
// callback) so two bitmaps can be co-iterated for compressed merges.
type RunReader interface {
	// NextRun returns the next run; ok is false when exhausted.
	NextRun() (r Run, ok bool)
}

// bmIter adapts a RunReader for merging: it tracks the current run and
// supports consuming it partially, mirroring the WAH runIter.
type bmIter struct {
	r   RunReader
	run Run
	ok  bool
}

func (it *bmIter) reset(r RunReader) {
	it.r = r
	it.next()
}

func (it *bmIter) next() {
	for {
		it.run, it.ok = it.r.NextRun()
		if !it.ok || it.run.N > 0 {
			return
		}
	}
}

// payload expands the current run's first segment to its 31-bit contents.
func (it *bmIter) payload() uint32 {
	if it.run.Fill {
		if it.run.Bit != 0 {
			return literalMask
		}
		return 0
	}
	return it.run.Word & literalMask
}

func (it *bmIter) consume(n int) {
	it.run.N -= n
	if it.run.N <= 0 {
		it.next()
	}
}

// ToVector re-encodes any bitmap as a WAH vector. A *Vector passes through
// unchanged (bitmaps are immutable, so sharing is safe).
func ToVector(b Bitmap) *Vector {
	if v, ok := b.(*Vector); ok {
		return v
	}
	var a Appender
	var it bmIter
	it.reset(b.Runs())
	left := b.Len()
	for it.ok && left > 0 {
		if it.run.Fill {
			span := it.run.N * SegmentBits
			if span <= left {
				a.AppendFill(it.run.Bit, it.run.N)
				left -= span
				it.consume(it.run.N)
				continue
			}
			full := left / SegmentBits
			if full > 0 {
				a.AppendFill(it.run.Bit, full)
				left -= full * SegmentBits
				it.consume(full)
			}
			if left > 0 {
				a.AppendPartial(it.payload(), left)
				left = 0
			}
			break
		}
		if left >= SegmentBits {
			a.AppendSegment(it.run.Word)
			left -= SegmentBits
		} else {
			a.AppendPartial(it.run.Word, left)
			left = 0
		}
		it.consume(1)
	}
	for left >= SegmentBits { // defensive: a short reader pads with zeros
		full := left / SegmentBits
		a.AppendFill(0, full)
		left -= full * SegmentBits
	}
	if left > 0 {
		a.AppendPartial(0, left)
	}
	return a.Vector()
}

func checkLen(a, b Bitmap) int {
	if a.Len() != b.Len() {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", a.Len(), b.Len()))
	}
	return a.Len()
}
