package bitvec

import (
	"fmt"
	"math/bits"
)

// Count returns the number of set bits. Fill runs are counted in O(1),
// giving the "fast 1-bits count operations" the paper relies on for EMD and
// joint-distribution counting.
func (v *Vector) Count() int {
	total := 0
	bitsLeft := v.nbits
	var it runIter
	it.reset(v.words)
	for it.valid() && bitsLeft > 0 {
		if it.fill {
			n := it.run * SegmentBits
			if n > bitsLeft {
				n = bitsLeft
			}
			if it.word&fillValue != 0 {
				total += n
			}
			bitsLeft -= it.run * SegmentBits
			it.consume(it.run)
			continue
		}
		w := it.payload()
		if bitsLeft < SegmentBits {
			w &= uint32(1)<<uint(bitsLeft) - 1
		}
		total += bits.OnesCount32(w)
		bitsLeft -= SegmentBits
		it.consume(1)
	}
	return total
}

// CountRange returns the number of set bits in the half-open logical bit
// range [from, to). It walks the compressed runs, so a range covered by fill
// words costs O(1) per run. This is the primitive behind the spatial-unit
// scan of the correlation-mining algorithm (Algorithm 2, line 7).
func (v *Vector) CountRange(from, to int) int {
	if from < 0 || to > v.nbits || from > to {
		panic(fmt.Sprintf("bitvec: CountRange[%d,%d) out of range [0,%d]", from, to, v.nbits))
	}
	if from == to {
		return 0
	}
	total := 0
	base := 0 // logical bit offset of the start of the current run
	var it runIter
	it.reset(v.words)
	for it.valid() && base < to {
		if it.fill {
			span := it.run * SegmentBits
			end := base + span
			if it.word&fillValue != 0 {
				lo, hi := base, end
				if lo < from {
					lo = from
				}
				if hi > to {
					hi = to
				}
				if hi > lo {
					total += hi - lo
				}
			}
			base = end
			it.consume(it.run)
			continue
		}
		end := base + SegmentBits
		if end > from { // segment overlaps the range
			w := it.payload()
			lo := 0
			if from > base {
				lo = from - base
			}
			hi := SegmentBits
			if to < end {
				hi = to - base
			}
			w >>= uint(lo)
			w &= uint32(1)<<uint(hi-lo) - 1
			total += bits.OnesCount32(w)
		}
		base = end
		it.consume(1)
	}
	return total
}

// CountUnits splits the vector into consecutive units of unitSize bits (the
// last unit may be short) and returns the set-bit count of each. It is a
// single-pass equivalent of calling CountRange once per unit and is used for
// the per-spatial-unit 1-bit distributions of correlation mining.
func (v *Vector) CountUnits(unitSize int) []int {
	if unitSize <= 0 {
		panic("bitvec: CountUnits requires unitSize > 0")
	}
	n := (v.nbits + unitSize - 1) / unitSize
	out := make([]int, n)
	if v.nbits == 0 {
		return out
	}
	base := 0
	var it runIter
	it.reset(v.words)
	for it.valid() && base < v.nbits {
		if it.fill {
			span := it.run * SegmentBits
			end := base + span
			if end > v.nbits {
				end = v.nbits
			}
			if it.word&fillValue != 0 {
				// distribute the solid run across units
				p := base
				for p < end {
					u := p / unitSize
					next := (u + 1) * unitSize
					if next > end {
						next = end
					}
					out[u] += next - p
					p = next
				}
			}
			base += span
			it.consume(it.run)
			continue
		}
		w := it.payload()
		limit := base + SegmentBits
		if limit > v.nbits {
			w &= uint32(1)<<uint(v.nbits-base) - 1
		}
		for w != 0 {
			j := bits.TrailingZeros32(w)
			out[(base+j)/unitSize]++
			w &= w - 1
		}
		base += SegmentBits
		it.consume(1)
	}
	return out
}

// WriteIDs stores id into dst at every set-bit position. Fill runs become
// contiguous range writes, so decoding a whole index into per-element bin
// ids costs O(n) with no per-bit closure overhead — the hot path of the
// bitmap-only joint-histogram computation.
func (v *Vector) WriteIDs(dst []int32, id int32) {
	if len(dst) < v.nbits {
		panic(fmt.Sprintf("bitvec: WriteIDs dst of %d for %d bits", len(dst), v.nbits))
	}
	var it runIter
	it.reset(v.words)
	base := 0
	for it.valid() && base < v.nbits {
		if it.fill {
			end := base + it.run*SegmentBits
			if it.word&fillValue != 0 {
				hi := end
				if hi > v.nbits {
					hi = v.nbits
				}
				for p := base; p < hi; p++ {
					dst[p] = id
				}
			}
			base = end
			it.consume(it.run)
			continue
		}
		w := it.payload()
		for w != 0 {
			j := bits.TrailingZeros32(w)
			if p := base + j; p < v.nbits {
				dst[p] = id
			}
			w &= w - 1
		}
		base += SegmentBits
		it.consume(1)
	}
}

// AndCount returns Count(v AND o) without materializing the result vector.
// The mining inner loop calls this for every bin pair, so avoiding the
// intermediate allocation matters.
func (v *Vector) AndCount(bm Bitmap) int {
	o, ok := bm.(*Vector)
	if !ok {
		return genericBinaryCount(v, bm, opAnd)
	}
	if v.nbits != o.nbits {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.nbits, o.nbits))
	}
	var a, b runIter
	a.reset(v.words)
	b.reset(o.words)
	total := 0
	bitsLeft := v.nbits
	for a.valid() && b.valid() && bitsLeft > 0 {
		if a.fill && b.fill {
			n := a.run
			if b.run < n {
				n = b.run
			}
			if a.fillBit()&b.fillBit() != 0 {
				span := n * SegmentBits
				if span > bitsLeft {
					span = bitsLeft
				}
				total += span
			}
			bitsLeft -= n * SegmentBits
			a.consume(n)
			b.consume(n)
			continue
		}
		w := a.payload() & b.payload()
		if bitsLeft < SegmentBits {
			w &= uint32(1)<<uint(bitsLeft) - 1
		}
		total += bits.OnesCount32(w)
		bitsLeft -= SegmentBits
		a.consume(1)
		b.consume(1)
	}
	return total
}

// XorCount returns Count(v XOR o) without materializing the result. This is
// the paper's spatial EMD primitive: the number of positions where exactly
// one of the two bin vectors has an element.
func (v *Vector) XorCount(bm Bitmap) int {
	o, ok := bm.(*Vector)
	if !ok {
		return genericBinaryCount(v, bm, opXor)
	}
	if v.nbits != o.nbits {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.nbits, o.nbits))
	}
	var a, b runIter
	a.reset(v.words)
	b.reset(o.words)
	total := 0
	bitsLeft := v.nbits
	for a.valid() && b.valid() && bitsLeft > 0 {
		if a.fill && b.fill {
			n := a.run
			if b.run < n {
				n = b.run
			}
			if a.fillBit()^b.fillBit() != 0 {
				span := n * SegmentBits
				if span > bitsLeft {
					span = bitsLeft
				}
				total += span
			}
			bitsLeft -= n * SegmentBits
			a.consume(n)
			b.consume(n)
			continue
		}
		w := a.payload() ^ b.payload()
		if bitsLeft < SegmentBits {
			w &= uint32(1)<<uint(bitsLeft) - 1
		}
		total += bits.OnesCount32(w)
		bitsLeft -= SegmentBits
		a.consume(1)
		b.consume(1)
	}
	return total
}
