// Package bitvec implements WAH (Word-Aligned Hybrid) compressed bitvectors,
// the storage primitive behind the paper's bitmap indices. A vector is a
// sequence of logical bits stored as 32-bit words of two kinds:
//
//   - literal word: bit 31 = 0, bits 0..30 hold 31 logical bits verbatim
//     (bit j of the word is logical bit j of the segment, matching the
//     "Segments[VectorID] |= 1 << j" convention of the paper's Algorithm 1);
//   - fill word: bit 31 = 1, bit 30 is the fill value, bits 0..29 count how
//     many consecutive 31-bit segments carry that value.
//
// All bitwise operations (And, Or, Xor, AndNot) work directly on the
// compressed form, never materializing the uncompressed bits, as does
// counting (Count, CountRange). The package also provides the streaming
// Appender used by the paper's in-place, in-situ compression (Algorithm 1)
// and a byte-aligned (BBC-style) codec for size comparisons.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// SegmentBits is the number of logical bits carried by one WAH word.
const SegmentBits = 31

const (
	fillFlag    = uint32(1) << 31            // distinguishes fill words from literals
	fillValue   = uint32(1) << 30            // the repeated bit of a fill word
	countMask   = fillValue - 1              // low 30 bits: run length in segments
	literalMask = uint32(1)<<SegmentBits - 1 // low 31 bits of a literal
	// maxRun is the largest segment count representable by one fill word.
	maxRun = int(countMask)
)

// Vector is a WAH-compressed bitvector. The zero value is an empty vector
// ready for use. Vectors are immutable once built except through Appender.
type Vector struct {
	words []uint32
	nbits int // logical length in bits
}

// New returns an empty vector with capacity hints for w words.
func New(hintWords int) *Vector {
	return &Vector{words: make([]uint32, 0, hintWords)}
}

// FromBools compresses a boolean slice.
func FromBools(bs []bool) *Vector {
	var a Appender
	for i := 0; i < len(bs); i += SegmentBits {
		var seg uint32
		w := len(bs) - i
		if w > SegmentBits {
			w = SegmentBits
		}
		for j := 0; j < w; j++ {
			if bs[i+j] {
				seg |= 1 << uint(j)
			}
		}
		a.AppendPartial(seg, w)
	}
	return a.Vector()
}

// FromIndices builds a vector of length n with 1-bits at the given sorted,
// distinct positions. It panics if an index is out of range or unsorted.
func FromIndices(n int, idx []int) *Vector {
	var a Appender
	prev := -1
	cur := 0
	var seg uint32
	segStart := 0
	flush := func(upTo int) { // emit full segments until segStart+31 > upTo
		for segStart+SegmentBits <= upTo {
			a.AppendSegment(seg)
			seg = 0
			segStart += SegmentBits
		}
	}
	for _, i := range idx {
		if i <= prev || i >= n {
			panic(fmt.Sprintf("bitvec: FromIndices: index %d out of order or range [0,%d)", i, n))
		}
		prev = i
		flush(i)
		seg |= 1 << uint(i-segStart)
		cur = i + 1
	}
	_ = cur
	flush(n)
	if segStart < n {
		a.AppendPartial(seg, n-segStart)
	}
	return a.Vector()
}

// Len returns the logical number of bits.
func (v *Vector) Len() int { return v.nbits }

// Words returns the number of physical 32-bit words.
func (v *Vector) Words() int { return len(v.words) }

// SizeBytes returns the compressed size in bytes.
func (v *Vector) SizeBytes() int { return 4 * len(v.words) }

// RawWords exposes the underlying encoded words (read-only; used by store).
func (v *Vector) RawWords() []uint32 { return v.words }

// FromRawWords reconstructs a vector from encoded words and a bit length.
// It validates the encoding and returns an error on malformed input.
func FromRawWords(words []uint32, nbits int) (*Vector, error) {
	if nbits < 0 {
		return nil, fmt.Errorf("bitvec: negative bit length %d", nbits)
	}
	total := 0
	for _, w := range words {
		if w&fillFlag != 0 {
			c := int(w & countMask)
			if c == 0 {
				return nil, fmt.Errorf("bitvec: zero-length fill word %#x", w)
			}
			total += c * SegmentBits
		} else {
			total += SegmentBits
		}
	}
	if total < nbits || total-nbits >= SegmentBits {
		return nil, fmt.Errorf("bitvec: words cover %d bits, incompatible with declared length %d", total, nbits)
	}
	return &Vector{words: append([]uint32(nil), words...), nbits: nbits}, nil
}

// Clone returns a deep copy.
func (v *Vector) Clone() Bitmap {
	return &Vector{words: append([]uint32(nil), v.words...), nbits: v.nbits}
}

// Equal reports whether two bitmaps have identical logical contents.
// Physical encodings may differ (e.g. two adjacent fills vs one); Equal
// compares run-by-run, not word-by-word.
func (v *Vector) Equal(bm Bitmap) bool {
	o, ok := bm.(*Vector)
	if !ok {
		return genericEqual(v, bm)
	}
	if v.nbits != o.nbits {
		return false
	}
	var a, b runIter
	a.reset(v.words)
	b.reset(o.words)
	for a.valid() && b.valid() {
		n := a.run
		if b.run < n {
			n = b.run
		}
		if a.fill && b.fill {
			if a.fillBit() != b.fillBit() {
				return false
			}
		} else {
			// at least one is a literal, so n == 1 for that side; compare payloads
			if a.payload() != b.payload() {
				return false
			}
			n = 1
		}
		a.consume(n)
		b.consume(n)
	}
	return !a.valid() && !b.valid()
}

// Get reports the value of logical bit i.
func (v *Vector) Get(i int) bool {
	if i < 0 || i >= v.nbits {
		panic(fmt.Sprintf("bitvec: Get(%d) out of range [0,%d)", i, v.nbits))
	}
	seg := i / SegmentBits
	off := uint(i % SegmentBits)
	var it runIter
	it.reset(v.words)
	pos := 0
	for it.valid() {
		if seg < pos+it.run {
			if it.fill {
				return it.word&fillValue != 0
			}
			return it.payload()&(1<<off) != 0
		}
		pos += it.run
		it.consume(it.run)
	}
	return false
}

// Bools decompresses the vector into a boolean slice (for tests/debugging).
func (v *Vector) Bools() []bool {
	out := make([]bool, v.nbits)
	i := 0
	v.Iterate(func(pos int) bool {
		out[pos] = true
		i++
		return true
	})
	return out
}

// Iterate calls fn for each set bit in ascending order; fn returning false
// stops the iteration early.
func (v *Vector) Iterate(fn func(pos int) bool) {
	var it runIter
	it.reset(v.words)
	base := 0
	for it.valid() {
		if it.fill {
			if it.word&fillValue != 0 {
				end := base + it.run*SegmentBits
				if end > v.nbits {
					end = v.nbits
				}
				for p := base; p < end; p++ {
					if !fn(p) {
						return
					}
				}
			}
			base += it.run * SegmentBits
			it.consume(it.run)
			continue
		}
		w := it.payload()
		for w != 0 {
			j := bits.TrailingZeros32(w)
			p := base + j
			if p >= v.nbits {
				break
			}
			if !fn(p) {
				return
			}
			w &= w - 1
		}
		base += SegmentBits
		it.consume(1)
	}
}

// String renders a compact run description, e.g. "len=93 [L:0000001f F1x2]".
func (v *Vector) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "len=%d [", v.nbits)
	for i, w := range v.words {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if w&fillFlag != 0 {
			bit := 0
			if w&fillValue != 0 {
				bit = 1
			}
			fmt.Fprintf(&sb, "F%dx%d", bit, w&countMask)
		} else {
			fmt.Fprintf(&sb, "L:%08x", w)
		}
	}
	sb.WriteByte(']')
	return sb.String()
}

// Runs streams the contents at segment granularity (see Bitmap).
func (v *Vector) Runs() RunReader {
	r := &vecRunReader{}
	r.it.reset(v.words)
	return r
}

type vecRunReader struct{ it runIter }

func (r *vecRunReader) NextRun() (Run, bool) {
	if !r.it.valid() {
		return Run{}, false
	}
	if r.it.fill {
		run := Run{Fill: true, Bit: r.it.fillBit(), N: r.it.run}
		r.it.consume(r.it.run)
		return run, true
	}
	run := Run{N: 1, Word: r.it.payload()}
	r.it.consume(1)
	return run, true
}

var _ Bitmap = (*Vector)(nil)

// runIter walks the encoded words as a sequence of runs. For a fill word the
// run is its segment count; for a literal the run is 1. consume(n) advances
// by n segments within the current run (n must not exceed run).
type runIter struct {
	words []uint32
	pos   int
	fill  bool
	word  uint32 // current raw word
	run   int    // remaining segments in current run
}

func (it *runIter) reset(words []uint32) {
	it.words = words
	it.pos = 0
	it.load()
}

func (it *runIter) load() {
	if it.pos >= len(it.words) {
		it.run = 0
		return
	}
	w := it.words[it.pos]
	it.word = w
	if w&fillFlag != 0 {
		it.fill = true
		it.run = int(w & countMask)
	} else {
		it.fill = false
		it.run = 1
	}
}

func (it *runIter) valid() bool { return it.run > 0 }

// payload returns the expanded 31-bit segment content of the current run.
func (it *runIter) payload() uint32 {
	if it.fill {
		if it.word&fillValue != 0 {
			return literalMask
		}
		return 0
	}
	return it.word & literalMask
}

// fillBit reports the repeated bit of a fill run (only valid when fill).
func (it *runIter) fillBit() uint32 {
	if it.word&fillValue != 0 {
		return 1
	}
	return 0
}

func (it *runIter) consume(n int) {
	it.run -= n
	if it.run == 0 {
		it.pos++
		it.load()
	}
}
