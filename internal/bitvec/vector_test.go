package bitvec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomBools produces adversarial bit patterns for property tests: pure
// random bits compress poorly and never exercise fills, so we generate runs
// with random lengths and values plus occasional noise.
func randomBools(r *rand.Rand, maxLen int) []bool {
	n := r.Intn(maxLen)
	out := make([]bool, 0, n)
	for len(out) < n {
		switch r.Intn(3) {
		case 0: // run of identical bits, often crossing segment boundaries
			v := r.Intn(2) == 1
			l := 1 + r.Intn(120)
			for i := 0; i < l && len(out) < n; i++ {
				out = append(out, v)
			}
		case 1: // noisy stretch
			l := 1 + r.Intn(40)
			for i := 0; i < l && len(out) < n; i++ {
				out = append(out, r.Intn(2) == 1)
			}
		default: // sparse stretch
			l := 1 + r.Intn(80)
			for i := 0; i < l && len(out) < n; i++ {
				out = append(out, r.Intn(17) == 0)
			}
		}
	}
	return out
}

// boolsValue adapts randomBools to testing/quick's Generator protocol.
type boolsValue []bool

func (boolsValue) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(boolsValue(randomBools(r, 2000)))
}

// pairValue generates two equal-length bool slices.
type pairValue struct{ A, B []bool }

func (pairValue) Generate(r *rand.Rand, size int) reflect.Value {
	a := randomBools(r, 2000)
	b := randomBools(r, len(a)+1)
	for len(b) < len(a) {
		b = append(b, r.Intn(2) == 1)
	}
	return reflect.ValueOf(pairValue{A: a, B: b[:len(a)]})
}

func TestRoundTripProperty(t *testing.T) {
	f := func(bs boolsValue) bool {
		v := FromBools(bs)
		if v.Len() != len(bs) {
			return false
		}
		got := v.Bools()
		for i := range bs {
			if got[i] != bs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGetProperty(t *testing.T) {
	f := func(bs boolsValue) bool {
		v := FromBools(bs)
		for i, want := range bs {
			if v.Get(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualProperty(t *testing.T) {
	f := func(bs boolsValue) bool {
		v := FromBools(bs)
		w := FromBools(bs)
		return v.Equal(w) && w.Equal(v) && v.Equal(v.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualDetectsDifference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		bs := randomBools(r, 1000)
		if len(bs) == 0 {
			continue
		}
		v := FromBools(bs)
		i := r.Intn(len(bs))
		bs[i] = !bs[i]
		w := FromBools(bs)
		if v.Equal(w) {
			t.Fatalf("trial %d: Equal true after flipping bit %d", trial, i)
		}
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	a := FromBools(make([]bool, 31))
	b := FromBools(make([]bool, 32))
	if a.Equal(b) {
		t.Fatal("vectors of different lengths reported equal")
	}
}

func TestFromIndices(t *testing.T) {
	cases := []struct {
		n   int
		idx []int
	}{
		{0, nil},
		{1, []int{0}},
		{31, []int{0, 30}},
		{32, []int{31}},
		{100, []int{0, 31, 62, 93, 99}},
		{1000, []int{500}},
	}
	for _, c := range cases {
		v := FromIndices(c.n, c.idx)
		if v.Len() != c.n {
			t.Fatalf("n=%d idx=%v: Len=%d", c.n, c.idx, v.Len())
		}
		want := make([]bool, c.n)
		for _, i := range c.idx {
			want[i] = true
		}
		got := v.Bools()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d idx=%v: bit %d = %v, want %v", c.n, c.idx, i, got[i], want[i])
			}
		}
		if v.Count() != len(c.idx) {
			t.Fatalf("n=%d idx=%v: Count=%d want %d", c.n, c.idx, v.Count(), len(c.idx))
		}
	}
}

func TestFromIndicesPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsorted indices")
		}
	}()
	FromIndices(10, []int{5, 3})
}

func TestIterateEarlyStop(t *testing.T) {
	v := FromIndices(100, []int{1, 5, 9, 60})
	var seen []int
	v.Iterate(func(p int) bool {
		seen = append(seen, p)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 5 {
		t.Fatalf("early stop iterated %v", seen)
	}
}

func TestIterateProperty(t *testing.T) {
	f := func(bs boolsValue) bool {
		v := FromBools(bs)
		var got []int
		v.Iterate(func(p int) bool { got = append(got, p); return true })
		var want []int
		for i, b := range bs {
			if b {
				want = append(want, i)
			}
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFromRawWordsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		bs := randomBools(r, 2000)
		v := FromBools(bs)
		w, err := FromRawWords(v.RawWords(), v.Len())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !v.Equal(w) {
			t.Fatalf("trial %d: round trip not equal", trial)
		}
	}
}

func TestFromRawWordsRejectsMalformed(t *testing.T) {
	if _, err := FromRawWords([]uint32{fillFlag}, 31); err == nil {
		t.Fatal("zero-length fill accepted")
	}
	if _, err := FromRawWords([]uint32{1}, 100); err == nil {
		t.Fatal("bit length beyond coverage accepted")
	}
	if _, err := FromRawWords([]uint32{1, 2}, 5); err == nil {
		t.Fatal("bit length far below coverage accepted")
	}
	if _, err := FromRawWords(nil, -1); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestCompressionOfSolidRuns(t *testing.T) {
	// 10^6 zeros must compress to a single fill word (plus partial handling).
	n := 31 * 1000
	v := FromBools(make([]bool, n))
	if v.Words() != 1 {
		t.Fatalf("solid zero vector uses %d words, want 1 (%s)", v.Words(), v.String())
	}
	ones := make([]bool, n)
	for i := range ones {
		ones[i] = true
	}
	w := FromBools(ones)
	if w.Words() != 1 {
		t.Fatalf("solid one vector uses %d words, want 1", w.Words())
	}
	if w.Count() != n {
		t.Fatalf("Count=%d want %d", w.Count(), n)
	}
}

func TestVeryLongFillSplitsAtCounterLimit(t *testing.T) {
	var a Appender
	a.AppendFill(1, maxRun+5)
	v := a.Vector()
	if v.Len() != (maxRun+5)*SegmentBits {
		t.Fatalf("Len=%d", v.Len())
	}
	if v.Count() != v.Len() {
		t.Fatalf("Count=%d want %d", v.Count(), v.Len())
	}
	if v.Words() != 2 {
		t.Fatalf("words=%d want 2 (split at counter limit)", v.Words())
	}
}

func TestStringFormat(t *testing.T) {
	v := FromBools([]bool{true, false, true})
	s := v.String()
	if s == "" || s[:4] != "len=" {
		t.Fatalf("String() = %q", s)
	}
}
