package bitvec

import (
	"fmt"
	"math/bits"
)

// Generic, codec-independent implementations over the Run iterator. These
// are the cross-codec fallbacks: a WAH×Dense AND, a BBC CountRange, etc.
// They never decompress an operand — fill runs are consumed in O(1) — and
// binary ops emit a WAH vector, the universal intermediate form.

// genericBinary merges two bitmaps of any codecs into a WAH result.
func genericBinary(a, b Bitmap, k opKind) *Vector {
	n := checkLen(a, b)
	countOp(k)
	var x, y bmIter
	x.reset(a.Runs())
	y.reset(b.Runs())
	var out Appender
	left := n
	for left > 0 && x.ok && y.ok {
		if x.run.Fill && y.run.Fill {
			m := x.run.N
			if y.run.N < m {
				m = y.run.N
			}
			if span := m * SegmentBits; span <= left {
				out.AppendFill(k.fillBits(x.run.Bit&1, y.run.Bit&1), m)
				left -= span
				x.consume(m)
				y.consume(m)
				continue
			}
		}
		w := k.apply(x.payload(), y.payload()) & literalMask
		if left >= SegmentBits {
			out.AppendSegment(w)
			left -= SegmentBits
		} else {
			out.AppendPartial(w, left)
			left = 0
		}
		x.consume(1)
		y.consume(1)
	}
	for left >= SegmentBits {
		full := left / SegmentBits
		out.AppendFill(0, full)
		left -= full * SegmentBits
	}
	if left > 0 {
		out.AppendPartial(0, left)
	}
	return out.Vector()
}

// genericBinaryCount returns Count(a OP b) without materializing the result.
func genericBinaryCount(a, b Bitmap, k opKind) int {
	n := checkLen(a, b)
	var x, y bmIter
	x.reset(a.Runs())
	y.reset(b.Runs())
	total := 0
	left := n
	for left > 0 && x.ok && y.ok {
		if x.run.Fill && y.run.Fill {
			m := x.run.N
			if y.run.N < m {
				m = y.run.N
			}
			if k.fillBits(x.run.Bit&1, y.run.Bit&1) != 0 {
				span := m * SegmentBits
				if span > left {
					span = left
				}
				total += span
			}
			left -= m * SegmentBits
			x.consume(m)
			y.consume(m)
			continue
		}
		w := k.apply(x.payload(), y.payload()) & literalMask
		if left < SegmentBits {
			w &= uint32(1)<<uint(left) - 1
		}
		total += bits.OnesCount32(w)
		left -= SegmentBits
		x.consume(1)
		y.consume(1)
	}
	return total
}

// genericCount sums the set bits of any bitmap through its runs.
func genericCount(b Bitmap) int {
	total := 0
	left := b.Len()
	var it bmIter
	it.reset(b.Runs())
	for it.ok && left > 0 {
		if it.run.Fill {
			span := it.run.N * SegmentBits
			if span > left {
				span = left
			}
			if it.run.Bit != 0 {
				total += span
			}
			left -= it.run.N * SegmentBits
			it.consume(it.run.N)
			continue
		}
		w := it.run.Word & literalMask
		if left < SegmentBits {
			w &= uint32(1)<<uint(left) - 1
		}
		total += bits.OnesCount32(w)
		left -= SegmentBits
		it.consume(1)
	}
	return total
}

// genericCountRange counts set bits in [from, to) through the runs.
func genericCountRange(b Bitmap, from, to int) int {
	if from < 0 || to > b.Len() || from > to {
		panic(fmt.Sprintf("bitvec: CountRange[%d,%d) out of range [0,%d]", from, to, b.Len()))
	}
	if from == to {
		return 0
	}
	total := 0
	base := 0
	var it bmIter
	it.reset(b.Runs())
	for it.ok && base < to {
		if it.run.Fill {
			span := it.run.N * SegmentBits
			end := base + span
			if it.run.Bit != 0 {
				lo, hi := base, end
				if lo < from {
					lo = from
				}
				if hi > to {
					hi = to
				}
				if hi > lo {
					total += hi - lo
				}
			}
			base = end
			it.consume(it.run.N)
			continue
		}
		end := base + SegmentBits
		if end > from {
			w := it.run.Word & literalMask
			lo := 0
			if from > base {
				lo = from - base
			}
			hi := SegmentBits
			if to < end {
				hi = to - base
			}
			w >>= uint(lo)
			w &= uint32(1)<<uint(hi-lo) - 1
			total += bits.OnesCount32(w)
		}
		base = end
		it.consume(1)
	}
	return total
}

// genericCountUnits is CountUnits for any codec (see Vector.CountUnits).
func genericCountUnits(b Bitmap, unitSize int) []int {
	if unitSize <= 0 {
		panic("bitvec: CountUnits requires unitSize > 0")
	}
	nbits := b.Len()
	out := make([]int, (nbits+unitSize-1)/unitSize)
	if nbits == 0 {
		return out
	}
	base := 0
	var it bmIter
	it.reset(b.Runs())
	for it.ok && base < nbits {
		if it.run.Fill {
			span := it.run.N * SegmentBits
			end := base + span
			if end > nbits {
				end = nbits
			}
			if it.run.Bit != 0 {
				p := base
				for p < end {
					u := p / unitSize
					next := (u + 1) * unitSize
					if next > end {
						next = end
					}
					out[u] += next - p
					p = next
				}
			}
			base += span
			it.consume(it.run.N)
			continue
		}
		w := it.run.Word & literalMask
		if base+SegmentBits > nbits {
			w &= uint32(1)<<uint(nbits-base) - 1
		}
		for w != 0 {
			j := bits.TrailingZeros32(w)
			out[(base+j)/unitSize]++
			w &= w - 1
		}
		base += SegmentBits
		it.consume(1)
	}
	return out
}

// genericGet reads one logical bit through the runs.
func genericGet(b Bitmap, i int) bool {
	if i < 0 || i >= b.Len() {
		panic(fmt.Sprintf("bitvec: Get(%d) out of range [0,%d)", i, b.Len()))
	}
	seg := i / SegmentBits
	off := uint(i % SegmentBits)
	pos := 0
	var it bmIter
	it.reset(b.Runs())
	for it.ok {
		if seg < pos+it.run.N {
			if it.run.Fill {
				return it.run.Bit != 0
			}
			return it.run.Word&(1<<off) != 0
		}
		pos += it.run.N
		it.consume(it.run.N)
	}
	return false
}

// genericIterate visits every set bit in ascending order.
func genericIterate(b Bitmap, fn func(pos int) bool) {
	nbits := b.Len()
	base := 0
	var it bmIter
	it.reset(b.Runs())
	for it.ok && base < nbits {
		if it.run.Fill {
			span := it.run.N * SegmentBits
			if it.run.Bit != 0 {
				end := base + span
				if end > nbits {
					end = nbits
				}
				for p := base; p < end; p++ {
					if !fn(p) {
						return
					}
				}
			}
			base += span
			it.consume(it.run.N)
			continue
		}
		w := it.run.Word & literalMask
		for w != 0 {
			j := bits.TrailingZeros32(w)
			p := base + j
			if p >= nbits {
				break
			}
			if !fn(p) {
				return
			}
			w &= w - 1
		}
		base += SegmentBits
		it.consume(1)
	}
}

// genericWriteIDs stores id at every set-bit position (see Vector.WriteIDs).
func genericWriteIDs(b Bitmap, dst []int32, id int32) {
	nbits := b.Len()
	if len(dst) < nbits {
		panic(fmt.Sprintf("bitvec: WriteIDs dst of %d for %d bits", len(dst), nbits))
	}
	base := 0
	var it bmIter
	it.reset(b.Runs())
	for it.ok && base < nbits {
		if it.run.Fill {
			end := base + it.run.N*SegmentBits
			if it.run.Bit != 0 {
				hi := end
				if hi > nbits {
					hi = nbits
				}
				for p := base; p < hi; p++ {
					dst[p] = id
				}
			}
			base = end
			it.consume(it.run.N)
			continue
		}
		w := it.run.Word & literalMask
		for w != 0 {
			j := bits.TrailingZeros32(w)
			if p := base + j; p < nbits {
				dst[p] = id
			}
			w &= w - 1
		}
		base += SegmentBits
		it.consume(1)
	}
}

// genericEqual compares logical contents across codecs.
func genericEqual(a, b Bitmap) bool {
	if a.Len() != b.Len() {
		return false
	}
	return genericBinaryCount(a, b, opXor) == 0
}

// Jaccard returns |A∩B| / |A∪B|, the similarity measure used to compare
// bin occupancy patterns; two empty bitmaps have similarity 1.
func Jaccard(a, b Bitmap) float64 {
	inter := a.AndCount(b)
	union := a.Count() + b.Count() - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Bools decompresses any bitmap into a boolean slice (tests/debugging).
func Bools(b Bitmap) []bool {
	out := make([]bool, b.Len())
	b.Iterate(func(pos int) bool {
		out[pos] = true
		return true
	})
	return out
}
