package bitvec

import (
	"os"
	"testing"
	"time"

	"insitubits/internal/telemetry"
)

// appendWorkload is the Algorithm-1-shaped hot loop the < 2% telemetry
// budget is measured on: sparse literal segments separated by zero runs,
// like a bitmap bin over smooth simulation data.
func appendWorkload(vectors, segs int) int {
	total := 0
	var a Appender
	for v := 0; v < vectors; v++ {
		a.Reset()
		for s := 0; s < segs; s++ {
			if s%7 == 3 {
				a.AppendSegment(uint32(s) | 1)
			} else {
				a.AppendSegment(0)
			}
		}
		total += a.Vector().Count()
	}
	return total
}

func BenchmarkAppendTelemetryOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		appendWorkload(8, 4096)
	}
}

func BenchmarkAppendTelemetryOff(b *testing.B) {
	SetTelemetry(nil)
	defer SetTelemetry(telemetry.Default)
	for i := 0; i < b.N; i++ {
		appendWorkload(8, 4096)
	}
}

// TestInstrumentationOverhead guards the observability budget: the
// telemetry-enabled append path must stay within 2% of the disabled path.
// Timing comparisons are too noisy for every `go test` run, so the guard
// only engages when TELEMETRY_OVERHEAD_GUARD=1 (the Makefile `overhead`
// target sets it); it compares best-of-N times, the stablest point
// estimate under scheduler noise.
func TestInstrumentationOverhead(t *testing.T) {
	if os.Getenv("TELEMETRY_OVERHEAD_GUARD") == "" {
		t.Skip("set TELEMETRY_OVERHEAD_GUARD=1 to run the timing guard (make overhead)")
	}
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	measure := func(enabled bool) time.Duration {
		if enabled {
			SetTelemetry(telemetry.Default)
		} else {
			SetTelemetry(nil)
		}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				appendWorkload(8, 4096)
			}
		})
		return time.Duration(r.NsPerOp())
	}
	// Interleave off/on rounds so CPU frequency drift hits both sides
	// equally, and take each side's minimum — a block design would charge
	// whichever side runs during a slow spell.
	measure(false)
	measure(true) // warmup both paths
	min := time.Duration(1<<63 - 1)
	off, on := min, min
	for round := 0; round < 5; round++ {
		if d := measure(false); d < off {
			off = d
		}
		if d := measure(true); d < on {
			on = d
		}
	}
	SetTelemetry(telemetry.Default)
	overhead := float64(on-off) / float64(off)
	t.Logf("append hot loop: off=%v on=%v overhead=%.2f%%", off, on, 100*overhead)
	if overhead > 0.02 {
		t.Errorf("telemetry overhead %.2f%% exceeds the 2%% budget (off=%v on=%v)",
			100*overhead, off, on)
	}
}
