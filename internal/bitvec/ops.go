package bitvec

import "fmt"

// Binary bitwise operations on the compressed form. Both operands must have
// the same logical length; the result has that length. No operand is ever
// decompressed: aligned runs of fill words are combined in O(1) per run,
// which is what makes the paper's metric computations (XOR for EMD, AND for
// joint distributions) fast.

// And returns v AND o. A WAH pair dispatches to the native run merge;
// mixed-codec pairs go through the generic run-iterator merge.
func (v *Vector) And(o Bitmap) Bitmap { return v.binaryOp(o, opAnd) }

// Or returns v OR o.
func (v *Vector) Or(o Bitmap) Bitmap { return v.binaryOp(o, opOr) }

// Xor returns v XOR o.
func (v *Vector) Xor(o Bitmap) Bitmap { return v.binaryOp(o, opXor) }

// AndNot returns v AND NOT o.
func (v *Vector) AndNot(o Bitmap) Bitmap { return v.binaryOp(o, opAndNot) }

func (v *Vector) binaryOp(o Bitmap, k opKind) Bitmap {
	if ov, ok := o.(*Vector); ok {
		return v.binary(ov, k)
	}
	return genericBinary(v, o, k)
}

// Not returns the complement of v (within its logical length).
func (v *Vector) Not() Bitmap {
	tel.opNot.Inc()
	var a Appender
	var it runIter
	it.reset(v.words)
	remaining := v.nbits
	for it.valid() && remaining > 0 {
		if it.fill {
			n := it.run
			covered := n * SegmentBits
			if covered <= remaining {
				a.appendFill(1-it.fillBit(), n)
				a.nbits += covered
				remaining -= covered
				it.consume(n)
				continue
			}
			// trailing fill extends past the logical end; emit full segments
			// then the partial remainder
			full := remaining / SegmentBits
			if full > 0 {
				a.appendFill(1-it.fillBit(), full)
				a.nbits += full * SegmentBits
				remaining -= full * SegmentBits
				it.consume(full)
			}
			if remaining > 0 {
				inv := ^it.payload() & literalMask
				a.AppendPartial(inv, remaining)
				remaining = 0
			}
			break
		}
		inv := ^it.payload() & literalMask
		if remaining >= SegmentBits {
			a.AppendSegment(inv)
			remaining -= SegmentBits
		} else {
			a.AppendPartial(inv, remaining)
			remaining = 0
		}
		it.consume(1)
	}
	return a.Vector()
}

type opKind uint8

const (
	opAnd opKind = iota
	opOr
	opXor
	opAndNot
)

func (k opKind) apply(x, y uint32) uint32 {
	switch k {
	case opAnd:
		return x & y
	case opOr:
		return x | y
	case opXor:
		return x ^ y
	default:
		return x &^ y
	}
}

// fillResult returns, for two fill bits, whether the op yields a fill and of
// what value. For all four ops, fill ⊗ fill is always a fill.
func (k opKind) fillBits(x, y uint32) uint32 {
	return k.apply(x, y) & 1
}

func (v *Vector) binary(o *Vector, k opKind) *Vector {
	if v.nbits != o.nbits {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.nbits, o.nbits))
	}
	countOp(k)
	var a runIter
	var b runIter
	a.reset(v.words)
	b.reset(o.words)
	var out Appender
	for a.valid() && b.valid() {
		if a.fill && b.fill {
			n := a.run
			if b.run < n {
				n = b.run
			}
			out.appendFill(k.fillBits(a.fillBit(), b.fillBit()), n)
			out.nbits += n * SegmentBits
			a.consume(n)
			b.consume(n)
			continue
		}
		// at least one literal: process exactly one segment
		w := k.apply(a.payload(), b.payload()) & literalMask
		switch w {
		case literalMask:
			out.appendFill(1, 1)
		case 0:
			out.appendFill(0, 1)
		default:
			out.words = append(out.words, w)
			out.lits++
		}
		out.nbits += SegmentBits
		a.consume(1)
		b.consume(1)
	}
	res := out.Vector()
	res.nbits = v.nbits // trailing partial segment keeps the logical length
	return res
}
