package bitvec

// Stats describes a vector's physical composition — how well WAH is
// working on this data. LiteralWords counts verbatim 31-bit words,
// FillWords the run-length words, and FilledSegments the segments those
// fills cover; high FilledSegments per FillWord is what makes compressed
// operations fast.
type Stats struct {
	LiteralWords   int
	FillWords      int
	ZeroFillWords  int
	OneFillWords   int
	FilledSegments int
	Bits           int
	SetBits        int
	// PhysicalBytes is the encoded footprint in bytes, set by every codec
	// (the WAH word tallies above only apply to word-aligned encodings).
	PhysicalBytes int
}

// CompressionRatio is the compressed size relative to the uncompressed
// bitmap (1 bit per element, 32/31 overhead ignored); lower is better.
func (s Stats) CompressionRatio() float64 {
	if s.Bits == 0 {
		return 0
	}
	if s.PhysicalBytes > 0 {
		return float64(8*s.PhysicalBytes) / float64(s.Bits)
	}
	return float64(32*(s.LiteralWords+s.FillWords)) / float64(s.Bits)
}

// Stats scans the encoded words.
func (v *Vector) Stats() Stats {
	st := Stats{Bits: v.nbits, SetBits: v.Count(), PhysicalBytes: v.SizeBytes()}
	for _, w := range v.words {
		if w&fillFlag != 0 {
			st.FillWords++
			st.FilledSegments += int(w & countMask)
			if w&fillValue != 0 {
				st.OneFillWords++
			} else {
				st.ZeroFillWords++
			}
		} else {
			st.LiteralWords++
		}
	}
	return st
}

// OrCount returns Count(v OR o) without materializing the result.
func (v *Vector) OrCount(o Bitmap) int {
	// |A ∪ B| = |A| + |B| − |A ∩ B|: two cached counts and one fused pass.
	return v.Count() + o.Count() - v.AndCount(o)
}

// AndNotCount returns Count(v AND NOT o) without materializing the result.
func (v *Vector) AndNotCount(o Bitmap) int {
	// |A \ B| = |A| − |A ∩ B|.
	return v.Count() - v.AndCount(o)
}

// Jaccard returns |A∩B| / |A∪B|, the similarity measure used to compare
// bin occupancy patterns; two empty vectors have similarity 1.
func (v *Vector) Jaccard(o Bitmap) float64 { return Jaccard(v, o) }
