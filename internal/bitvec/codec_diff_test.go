package bitvec

import (
	"math/rand"
	"testing"
)

// Differential suite over the three codecs: the same logical bits encoded as
// WAH, BBC, and Dense must agree bit-for-bit on every query primitive and on
// every binary operation, for every codec pairing (9 combinations). This is
// what keeps a new codec or a changed merge from silently diverging.

// codecsOf encodes bs under all three codecs.
func codecsOf(bs []bool) map[string]Bitmap {
	v := FromBools(bs)
	return map[string]Bitmap{
		"wah":   v,
		"bbc":   BBCFromBitmap(v),
		"dense": DenseFromBitmap(v),
	}
}

func diffDensities(r *rand.Rand, n int) map[string][]bool {
	out := map[string][]bool{
		"empty":  make([]bool, n),
		"full":   make([]bool, n),
		"sparse": make([]bool, n),
		"mid":    make([]bool, n),
		"heavy":  make([]bool, n),
		"runs":   make([]bool, n),
	}
	for i := 0; i < n; i++ {
		out["full"][i] = true
		out["sparse"][i] = r.Float64() < 0.01
		out["mid"][i] = r.Float64() < 0.5
		out["heavy"][i] = r.Float64() < 0.95
		out["runs"][i] = (i/137)%2 == 0
	}
	return out
}

func TestCodecDifferentialUnary(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 30, 31, 32, 62, 93, 100, 1000, 4096} {
		for dname, bs := range diffDensities(r, n) {
			want := FromBools(bs)
			for cname, bm := range codecsOf(bs) {
				if bm.Len() != n {
					t.Fatalf("n=%d %s/%s: Len=%d", n, dname, cname, bm.Len())
				}
				if got := bm.Count(); got != want.Count() {
					t.Fatalf("n=%d %s/%s: Count=%d want %d", n, dname, cname, got, want.Count())
				}
				if !bm.Equal(want) || !want.Equal(bm) {
					t.Fatalf("n=%d %s/%s: Equal disagrees with WAH reference", n, dname, cname)
				}
				sameBits(t, dname+"/"+cname, bm, bs)
				sameBits(t, dname+"/"+cname+"/not", bm.Not(), naiveOp(bs, bs, func(x, _ bool) bool { return !x }))
				sameBits(t, dname+"/"+cname+"/tovec", ToVector(bm), bs)
				if n > 0 {
					from := r.Intn(n)
					to := from + r.Intn(n-from+1)
					if got, w := bm.CountRange(from, to), naiveCount(bs, from, to); got != w {
						t.Fatalf("n=%d %s/%s: CountRange[%d,%d)=%d want %d", n, dname, cname, from, to, got, w)
					}
					if i := r.Intn(n); bm.Get(i) != bs[i] {
						t.Fatalf("n=%d %s/%s: Get(%d)", n, dname, cname, i)
					}
				}
				for _, unit := range []int{1, 7, 31, 64} {
					got := bm.CountUnits(unit)
					wantU := want.CountUnits(unit)
					for u := range wantU {
						if got[u] != wantU[u] {
							t.Fatalf("n=%d %s/%s: CountUnits(%d)[%d]=%d want %d", n, dname, cname, unit, u, got[u], wantU[u])
						}
					}
				}
			}
		}
	}
}

func TestCodecDifferentialBinary(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for _, n := range []int{31, 93, 100, 1000} {
		dens := diffDensities(r, n)
		pairs := [][2]string{
			{"sparse", "mid"}, {"mid", "heavy"}, {"empty", "full"},
			{"runs", "sparse"}, {"full", "runs"}, {"heavy", "heavy"},
		}
		for _, p := range pairs {
			aBits, bBits := dens[p[0]], dens[p[1]]
			as := codecsOf(aBits)
			bsM := codecsOf(bBits)
			wantAnd := naiveOp(aBits, bBits, func(x, y bool) bool { return x && y })
			wantOr := naiveOp(aBits, bBits, func(x, y bool) bool { return x || y })
			wantXor := naiveOp(aBits, bBits, func(x, y bool) bool { return x != y })
			wantAndNot := naiveOp(aBits, bBits, func(x, y bool) bool { return x && !y })
			for an, a := range as {
				for bn, b := range bsM {
					tag := p[0] + "." + an + "×" + p[1] + "." + bn
					sameBits(t, tag+"/and", a.And(b), wantAnd)
					sameBits(t, tag+"/or", a.Or(b), wantOr)
					sameBits(t, tag+"/xor", a.Xor(b), wantXor)
					sameBits(t, tag+"/andnot", a.AndNot(b), wantAndNot)
					if got, w := a.AndCount(b), naiveCount(wantAnd, 0, n); got != w {
						t.Fatalf("%s: AndCount=%d want %d", tag, got, w)
					}
					if got, w := a.OrCount(b), naiveCount(wantOr, 0, n); got != w {
						t.Fatalf("%s: OrCount=%d want %d", tag, got, w)
					}
					if got, w := a.XorCount(b), naiveCount(wantXor, 0, n); got != w {
						t.Fatalf("%s: XorCount=%d want %d", tag, got, w)
					}
					if got, w := a.AndNotCount(b), naiveCount(wantAndNot, 0, n); got != w {
						t.Fatalf("%s: AndNotCount=%d want %d", tag, got, w)
					}
				}
			}
		}
	}
}

func TestCodecOpsPreserveCodec(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	bs := make([]bool, 500)
	cs := make([]bool, 500)
	for i := range bs {
		bs[i] = r.Intn(4) == 0
		cs[i] = r.Intn(2) == 0
	}
	a := codecsOf(bs)
	b := codecsOf(cs)
	if _, ok := a["wah"].And(b["wah"]).(*Vector); !ok {
		t.Fatal("WAH×WAH did not stay WAH")
	}
	if _, ok := a["bbc"].Or(b["bbc"]).(*BBC); !ok {
		t.Fatal("BBC×BBC did not stay BBC")
	}
	if _, ok := a["dense"].Xor(b["dense"]).(*Dense); !ok {
		t.Fatal("Dense×Dense did not stay Dense")
	}
	// Mixed pairs land on the WAH intermediate.
	if _, ok := a["bbc"].And(b["dense"]).(*Vector); !ok {
		t.Fatal("mixed-codec op did not produce a WAH result")
	}
}

func TestCodecRoundTripsThroughRaw(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for _, n := range []int{0, 1, 31, 100, 997} {
		bs := make([]bool, n)
		for i := range bs {
			bs[i] = r.Intn(3) == 0
		}
		v := FromBools(bs)

		d := DenseFromBitmap(v)
		d2, err := DenseFromRawWords(d.RawWords(), n)
		if err != nil {
			t.Fatalf("n=%d: DenseFromRawWords: %v", n, err)
		}
		if !d2.Equal(v) {
			t.Fatalf("n=%d: dense raw round-trip diverged", n)
		}

		b := BBCFromBitmap(v)
		b2, err := BBCFromRaw(b.RawBytes(), n)
		if err != nil {
			t.Fatalf("n=%d: BBCFromRaw: %v", n, err)
		}
		if !b2.Equal(v) {
			t.Fatalf("n=%d: BBC raw round-trip diverged", n)
		}
	}
}

func TestRawValidationRejectsMalformed(t *testing.T) {
	if _, err := DenseFromRawWords([]uint32{1 << 31}, 31); err == nil {
		t.Fatal("dense word with bit 31 accepted")
	}
	if _, err := DenseFromRawWords([]uint32{0, 0}, 31); err == nil {
		t.Fatal("dense length mismatch accepted")
	}
	if _, err := DenseFromRawWords([]uint32{1 << 10}, 5); err == nil {
		t.Fatal("dense set bit beyond length accepted")
	}
	if _, err := BBCFromRaw([]byte{bbcZeroRun}, 8); err == nil {
		t.Fatal("BBC truncated run count accepted")
	}
	if _, err := BBCFromRaw([]byte{bbcZeroRun, 0}, 8); err == nil {
		t.Fatal("BBC zero-length run accepted")
	}
	if _, err := BBCFromRaw([]byte{3, 1, 2}, 32); err == nil {
		t.Fatal("BBC truncated literal accepted")
	}
	if _, err := BBCFromRaw([]byte{bbcZeroRun, 5}, 8); err == nil {
		t.Fatal("BBC over-long run accepted")
	}
	if _, err := BBCFromRaw([]byte{bbcOneRun, 1}, 5); err == nil {
		t.Fatal("BBC padding bits set accepted")
	}
	if _, err := BBCFromRaw([]byte{bbcZeroRun, 1}, 16); err == nil {
		t.Fatal("BBC short coverage accepted")
	}
}
