package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAppenderMatchesFromBools(t *testing.T) {
	f := func(bs boolsValue) bool {
		// Feed the same bits through the streaming appender in randomly
		// sized full-segment chunks and compare with the one-shot path.
		var a Appender
		i := 0
		for i+SegmentBits <= len(bs) {
			var seg uint32
			for j := 0; j < SegmentBits; j++ {
				if bs[i+j] {
					seg |= 1 << uint(j)
				}
			}
			a.AppendSegment(seg)
			i += SegmentBits
		}
		if i < len(bs) {
			var seg uint32
			for j := 0; i+j < len(bs); j++ {
				if bs[i+j] {
					seg |= 1 << uint(j)
				}
			}
			a.AppendPartial(seg, len(bs)-i)
		}
		return a.Vector().Equal(FromBools(bs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAppenderFillMerging(t *testing.T) {
	var a Appender
	for i := 0; i < 100; i++ {
		a.AppendSegment(0) // 100 all-zero segments must merge into one word
	}
	v := a.Vector()
	if v.Words() != 1 {
		t.Fatalf("100 zero segments -> %d words, want 1", v.Words())
	}
	if v.Len() != 100*SegmentBits {
		t.Fatalf("Len=%d", v.Len())
	}
}

func TestAppenderAlternatingNoMerge(t *testing.T) {
	var a Appender
	for i := 0; i < 10; i++ {
		a.AppendSegment(0)
		a.AppendSegment(literalMask)
	}
	v := a.Vector()
	if v.Words() != 20 {
		t.Fatalf("alternating fills merged incorrectly: %d words", v.Words())
	}
	if v.Count() != 10*SegmentBits {
		t.Fatalf("Count=%d", v.Count())
	}
}

func TestAppenderAppendFill(t *testing.T) {
	var a Appender
	a.AppendFill(0, 5)
	a.AppendFill(0, 7) // merges with previous
	a.AppendFill(1, 2)
	v := a.Vector()
	if v.Words() != 2 {
		t.Fatalf("words=%d want 2: %s", v.Words(), v.String())
	}
	if v.Count() != 2*SegmentBits {
		t.Fatalf("Count=%d", v.Count())
	}
	if v.Len() != 14*SegmentBits {
		t.Fatalf("Len=%d", v.Len())
	}
}

func TestAppenderPartialWidthValidation(t *testing.T) {
	for _, w := range []int{0, -1, 32} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("AppendPartial width %d did not panic", w)
				}
			}()
			var a Appender
			a.AppendPartial(0, w)
		}()
	}
}

func TestAppenderPartialMasksHighBits(t *testing.T) {
	var a Appender
	a.AppendPartial(^uint32(0), 3) // junk above bit 2 must be masked
	v := a.Vector()
	if v.Count() != 3 {
		t.Fatalf("Count=%d want 3", v.Count())
	}
}

func TestSnapshotThenContinue(t *testing.T) {
	var a Appender
	a.AppendSegment(5)
	snap := a.Snapshot()
	a.AppendSegment(literalMask)
	v := a.Vector()
	if snap.Len() != SegmentBits || v.Len() != 2*SegmentBits {
		t.Fatalf("snapshot len=%d final len=%d", snap.Len(), v.Len())
	}
	if snap.Count() != 2 {
		t.Fatalf("snapshot count=%d", snap.Count())
	}
	if v.Count() != 2+SegmentBits {
		t.Fatalf("final count=%d", v.Count())
	}
}

func TestAppenderReset(t *testing.T) {
	var a Appender
	a.AppendSegment(1)
	a.Reset()
	if a.Len() != 0 || a.SizeBytes() != 0 {
		t.Fatal("Reset did not clear state")
	}
	a.AppendSegment(0)
	if v := a.Vector(); v.Len() != SegmentBits || v.Count() != 0 {
		t.Fatal("appender unusable after Reset")
	}
}

func TestAppenderReuseAfterVector(t *testing.T) {
	var a Appender
	a.AppendSegment(literalMask)
	v1 := a.Vector()
	a.AppendSegment(0)
	v2 := a.Vector()
	if v1.Count() != SegmentBits || v2.Count() != 0 {
		t.Fatal("appender state leaked across Vector() calls")
	}
}

func BenchmarkAppenderStreaming(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	segs := make([]uint32, 1<<16)
	for i := range segs {
		switch r.Intn(4) {
		case 0:
			segs[i] = 0
		case 1:
			segs[i] = literalMask
		default:
			segs[i] = r.Uint32() & literalMask
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var a Appender
		for _, s := range segs {
			a.AppendSegment(s)
		}
		_ = a.Vector()
	}
}

func TestAppendAfterPartialPanics(t *testing.T) {
	for name, fn := range map[string]func(a *Appender){
		"segment": func(a *Appender) { a.AppendSegment(1) },
		"fill":    func(a *Appender) { a.AppendFill(1, 2) },
		"partial": func(a *Appender) { a.AppendPartial(1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s after partial did not panic", name)
				}
			}()
			var a Appender
			a.AppendPartial(3, 7)
			fn(&a)
		}()
	}
	// Reset and Vector clear the partial state.
	var a Appender
	a.AppendPartial(1, 3)
	a.Reset()
	a.AppendSegment(1) // must not panic
	_ = a.Vector()
	a.AppendPartial(1, 3)
	_ = a.Vector()
	a.AppendSegment(1) // must not panic
}
