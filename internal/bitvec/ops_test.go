package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func naiveOp(a, b []bool, op func(x, y bool) bool) []bool {
	out := make([]bool, len(a))
	for i := range a {
		out[i] = op(a[i], b[i])
	}
	return out
}

func sameBits(t *testing.T, name string, v Bitmap, want []bool) {
	t.Helper()
	if v.Len() != len(want) {
		t.Fatalf("%s: Len=%d want %d", name, v.Len(), len(want))
	}
	got := Bools(v)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: bit %d = %v, want %v", name, i, got[i], want[i])
		}
	}
}

func TestBinaryOpsProperty(t *testing.T) {
	f := func(p pairValue) bool {
		va, vb := FromBools(p.A), FromBools(p.B)
		checks := []struct {
			got  Bitmap
			want []bool
		}{
			{va.And(vb), naiveOp(p.A, p.B, func(x, y bool) bool { return x && y })},
			{va.Or(vb), naiveOp(p.A, p.B, func(x, y bool) bool { return x || y })},
			{va.Xor(vb), naiveOp(p.A, p.B, func(x, y bool) bool { return x != y })},
			{va.AndNot(vb), naiveOp(p.A, p.B, func(x, y bool) bool { return x && !y })},
		}
		for _, c := range checks {
			if c.got.Len() != len(c.want) {
				return false
			}
			bs := Bools(c.got)
			for i := range c.want {
				if bs[i] != c.want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNotProperty(t *testing.T) {
	f := func(bs boolsValue) bool {
		v := FromBools(bs)
		n := v.Not()
		if n.Len() != len(bs) {
			return false
		}
		got := Bools(n)
		for i := range bs {
			if got[i] == bs[i] {
				return false
			}
		}
		// double negation is identity
		return n.Not().Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOpsPreserveOperands(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := randomBools(r, 500)
	b := make([]bool, len(a))
	for i := range b {
		b[i] = r.Intn(2) == 0
	}
	va, vb := FromBools(a), FromBools(b)
	ca, cb := va.Clone(), vb.Clone()
	_ = va.And(vb)
	_ = va.Xor(vb)
	_ = va.Not()
	if !va.Equal(ca) || !vb.Equal(cb) {
		t.Fatal("operands mutated by operations")
	}
}

func TestOpsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	FromBools(make([]bool, 10)).And(FromBools(make([]bool, 11)))
}

func TestFillFillFastPath(t *testing.T) {
	// Two long solid vectors: the op must stay O(runs), producing few words.
	n := 31 * 100000
	ones := make([]bool, n)
	for i := range ones {
		ones[i] = true
	}
	va := FromBools(ones)
	vb := FromBools(make([]bool, n))
	and := va.And(vb)
	if and.Words() != 1 || and.Count() != 0 {
		t.Fatalf("fill AND fill: words=%d count=%d", and.Words(), and.Count())
	}
	or := va.Or(vb)
	if or.Words() != 1 || or.Count() != n {
		t.Fatalf("fill OR fill: words=%d count=%d", or.Words(), or.Count())
	}
	xor := va.Xor(vb)
	if xor.Count() != n {
		t.Fatalf("fill XOR fill: count=%d", xor.Count())
	}
}

func TestMixedFillLiteralAlignment(t *testing.T) {
	// a: long 1-fill; b: literal pattern — exercises the fill×literal path
	// where the fill run must be consumed one segment at a time.
	n := 31 * 50
	aBits := make([]bool, n)
	for i := range aBits {
		aBits[i] = true
	}
	bBits := make([]bool, n)
	for i := 0; i < n; i += 3 {
		bBits[i] = true
	}
	va, vb := FromBools(aBits), FromBools(bBits)
	and := va.And(vb)
	sameBits(t, "fill×literal and", and, bBits)
	if got, want := and.Count(), (n+2)/3; got != want {
		t.Fatalf("Count=%d want %d", got, want)
	}
}

func TestDeMorgan(t *testing.T) {
	f := func(p pairValue) bool {
		va, vb := FromBools(p.A), FromBools(p.B)
		// NOT(a AND b) == NOT a OR NOT b
		left := va.And(vb).Not()
		right := va.Not().Or(vb.Not())
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestXorSelfIsZero(t *testing.T) {
	f := func(bs boolsValue) bool {
		v := FromBools(bs)
		return v.Xor(v).Count() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
