package bitvec

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// A byte-aligned bitmap code in the spirit of BBC (Antoshenkov, DCC'95),
// which the paper cites alongside WAH as the other classic run-length bitmap
// compressor. It is implemented here as the comparison baseline for the
// WAH-vs-BBC ablation bench: byte-granular runs compress sparse vectors
// tighter than 31-bit-granular WAH fills, but operations require decoding.
//
// Stream format (not the historical BBC wire format, but byte-aligned and
// run-length like it):
//
//	token 0x00..0x7F : literal chunk; (token+1) verbatim bytes follow
//	token 0x80       : zero run; uvarint byte count follows
//	token 0x81       : one  run; uvarint byte count follows

const (
	bbcZeroRun = 0x80
	bbcOneRun  = 0x81
	bbcMaxLit  = 0x80 // longest literal chunk
)

// BBC is a byte-aligned compressed bitmap.
type BBC struct {
	data  []byte
	nbits int
}

// BBCFromBytes compresses a raw little-endian bit buffer of nbits bits.
func BBCFromBytes(raw []byte, nbits int) *BBC {
	if need := (nbits + 7) / 8; need != len(raw) {
		panic(fmt.Sprintf("bitvec: BBCFromBytes: %d bytes cannot hold exactly %d bits", len(raw), nbits))
	}
	var out []byte
	i := 0
	for i < len(raw) {
		b := raw[i]
		if b == 0x00 || b == 0xFF {
			j := i + 1
			for j < len(raw) && raw[j] == b {
				j++
			}
			tok := byte(bbcZeroRun)
			if b == 0xFF {
				tok = bbcOneRun
			}
			out = append(out, tok)
			out = binary.AppendUvarint(out, uint64(j-i))
			i = j
			continue
		}
		j := i + 1
		for j < len(raw) && j-i < bbcMaxLit && raw[j] != 0x00 && raw[j] != 0xFF {
			j++
		}
		out = append(out, byte(j-i-1))
		out = append(out, raw[i:j]...)
		i = j
	}
	return &BBC{data: out, nbits: nbits}
}

// BBCFromVector converts a WAH vector to byte-aligned form.
func BBCFromVector(v *Vector) *BBC {
	return BBCFromBytes(vectorToBytes(v), v.Len())
}

// Bytes decompresses into a raw little-endian bit buffer.
func (b *BBC) Bytes() []byte {
	out := make([]byte, 0, (b.nbits+7)/8)
	i := 0
	for i < len(b.data) {
		tok := b.data[i]
		i++
		switch tok {
		case bbcZeroRun, bbcOneRun:
			n, k := binary.Uvarint(b.data[i:])
			i += k
			fill := byte(0x00)
			if tok == bbcOneRun {
				fill = 0xFF
			}
			for j := uint64(0); j < n; j++ {
				out = append(out, fill)
			}
		default:
			n := int(tok) + 1
			out = append(out, b.data[i:i+n]...)
			i += n
		}
	}
	return out
}

// Len returns the logical bit length.
func (b *BBC) Len() int { return b.nbits }

// SizeBytes returns the compressed size.
func (b *BBC) SizeBytes() int { return len(b.data) }

// Count returns the number of set bits, decoding runs in O(1) each.
func (b *BBC) Count() int {
	total := 0
	bytePos := 0
	lastBits := b.nbits % 8
	fullBytes := b.nbits / 8
	countByte := func(v byte) {
		if bytePos < fullBytes {
			total += bits.OnesCount8(v)
		} else if lastBits > 0 {
			total += bits.OnesCount8(v & (1<<uint(lastBits) - 1))
		}
		bytePos++
	}
	i := 0
	for i < len(b.data) {
		tok := b.data[i]
		i++
		switch tok {
		case bbcZeroRun:
			n, k := binary.Uvarint(b.data[i:])
			i += k
			bytePos += int(n)
		case bbcOneRun:
			n, k := binary.Uvarint(b.data[i:])
			i += k
			for j := uint64(0); j < n; j++ {
				countByte(0xFF)
			}
		default:
			n := int(tok) + 1
			for _, v := range b.data[i : i+n] {
				countByte(v)
			}
			i += n
		}
	}
	return total
}

// And returns b AND o by decoding both operands (BBC's structural cost,
// which the ablation bench quantifies against WAH's compressed-form ops).
func (b *BBC) And(o *BBC) *BBC {
	if b.nbits != o.nbits {
		panic(fmt.Sprintf("bitvec: BBC length mismatch %d vs %d", b.nbits, o.nbits))
	}
	x := b.Bytes()
	y := o.Bytes()
	for i := range x {
		x[i] &= y[i]
	}
	return BBCFromBytes(x, b.nbits)
}

// vectorToBytes expands a WAH vector into a little-endian bit buffer.
func vectorToBytes(v *Vector) []byte {
	out := make([]byte, (v.Len()+7)/8)
	v.Iterate(func(pos int) bool {
		out[pos/8] |= 1 << uint(pos%8)
		return true
	})
	return out
}
