package bitvec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/bits"
)

// A byte-aligned bitmap codec in the spirit of BBC (Antoshenkov, DCC'95),
// which the paper cites alongside WAH as the other classic run-length bitmap
// compressor. Byte-granular runs compress sparse vectors tighter than
// 31-bit-granular WAH fills; logical operations run directly on the
// compressed stream by merging byte runs (see bbcBinary), so BBC bins never
// need a full decode on the query path.
//
// Stream format (not the historical BBC wire format, but byte-aligned and
// run-length like it):
//
//	token 0x00..0x7F : literal chunk; (token+1) verbatim bytes follow
//	token 0x80       : zero run; uvarint byte count follows
//	token 0x81       : one  run; uvarint byte count follows
//
// Invariants: the runs cover exactly ceil(nbits/8) bytes, and the padding
// bits of the final byte beyond nbits are zero (so byte-wise AND/OR/XOR/
// ANDNOT preserve the padding without masking).

const (
	bbcZeroRun = 0x80
	bbcOneRun  = 0x81
	bbcMaxLit  = 0x80 // longest literal chunk
)

// BBC is a byte-aligned compressed bitmap.
type BBC struct {
	data  []byte
	nbits int
}

// BBCFromBytes compresses a raw little-endian bit buffer of nbits bits.
// Padding bits of the final byte must be zero.
func BBCFromBytes(raw []byte, nbits int) *BBC {
	if need := (nbits + 7) / 8; need != len(raw) {
		panic(fmt.Sprintf("bitvec: BBCFromBytes: %d bytes cannot hold exactly %d bits", len(raw), nbits))
	}
	if rem := nbits % 8; rem != 0 && len(raw) > 0 && raw[len(raw)-1]&^(byte(1)<<uint(rem)-1) != 0 {
		panic(fmt.Sprintf("bitvec: BBCFromBytes: set bits beyond length %d", nbits))
	}
	var out []byte
	i := 0
	for i < len(raw) {
		b := raw[i]
		if b == 0x00 || b == 0xFF {
			j := i + 1
			for j < len(raw) && raw[j] == b {
				j++
			}
			tok := byte(bbcZeroRun)
			if b == 0xFF {
				tok = bbcOneRun
			}
			out = append(out, tok)
			out = binary.AppendUvarint(out, uint64(j-i))
			i = j
			continue
		}
		j := i + 1
		for j < len(raw) && j-i < bbcMaxLit && raw[j] != 0x00 && raw[j] != 0xFF {
			j++
		}
		out = append(out, byte(j-i-1))
		out = append(out, raw[i:j]...)
		i = j
	}
	return &BBC{data: out, nbits: nbits}
}

// BBCFromVector converts a WAH vector to byte-aligned form.
func BBCFromVector(v *Vector) *BBC { return BBCFromBitmap(v) }

// BBCFromBitmap re-encodes any bitmap as BBC. A *BBC passes through
// unchanged (bitmaps are immutable, so sharing is safe).
func BBCFromBitmap(b Bitmap) *BBC {
	if c, ok := b.(*BBC); ok {
		return c
	}
	return BBCFromBytes(bitmapToBytes(b), b.Len())
}

// RawBytes exposes the encoded stream (read-only; used by store).
func (b *BBC) RawBytes() []byte { return b.data }

// BBCFromRaw reconstructs a BBC bitmap from a stored stream, validating the
// token structure, byte coverage, and final-byte padding; used by the store
// reader on untrusted input.
func BBCFromRaw(data []byte, nbits int) (*BBC, error) {
	if nbits < 0 {
		return nil, fmt.Errorf("bitvec: negative bit length %d", nbits)
	}
	need := (nbits + 7) / 8
	covered := 0
	i := 0
	for i < len(data) {
		tok := data[i]
		i++
		switch tok {
		case bbcZeroRun, bbcOneRun:
			n, k := binary.Uvarint(data[i:])
			if k <= 0 {
				return nil, fmt.Errorf("bitvec: BBC run at byte %d has malformed count", i-1)
			}
			if n == 0 {
				return nil, fmt.Errorf("bitvec: BBC zero-length run at byte %d", i-1)
			}
			if n > uint64(need-covered) {
				return nil, fmt.Errorf("bitvec: BBC run of %d bytes overflows %d-bit bitmap", n, nbits)
			}
			i += k
			covered += int(n)
		default:
			n := int(tok) + 1
			if i+n > len(data) {
				return nil, fmt.Errorf("bitvec: BBC literal chunk at byte %d truncated", i-1)
			}
			if n > need-covered {
				return nil, fmt.Errorf("bitvec: BBC literal of %d bytes overflows %d-bit bitmap", n, nbits)
			}
			i += n
			covered += n
		}
	}
	if covered != need {
		return nil, fmt.Errorf("bitvec: BBC stream covers %d bytes, want %d for %d bits", covered, need, nbits)
	}
	b := &BBC{data: append([]byte(nil), data...), nbits: nbits}
	if rem := nbits % 8; rem != 0 && need > 0 {
		// The padding-zero invariant: check the final byte without decoding
		// the rest of the stream.
		if last := b.byteAt(need - 1); last&^(byte(1)<<uint(rem)-1) != 0 {
			return nil, fmt.Errorf("bitvec: BBC encoding has set bits beyond length %d", nbits)
		}
	}
	return b, nil
}

// byteAt decodes the logical byte at index idx (validated streams only).
func (b *BBC) byteAt(idx int) byte {
	var t bbcTokIter
	t.reset(b.data)
	pos := 0
	for t.valid() {
		if idx < pos+t.n {
			if t.fill {
				return t.fb
			}
			return t.lit[t.lp+idx-pos]
		}
		pos += t.n
		t.consume(t.n)
	}
	return 0
}

// Bytes decompresses into a raw little-endian bit buffer.
func (b *BBC) Bytes() []byte {
	out := make([]byte, 0, (b.nbits+7)/8)
	var t bbcTokIter
	t.reset(b.data)
	for t.valid() {
		if t.fill {
			for j := 0; j < t.n; j++ {
				out = append(out, t.fb)
			}
		} else {
			out = append(out, t.lit[t.lp:t.lp+t.n]...)
		}
		t.consume(t.n)
	}
	return out
}

// Len returns the logical bit length.
func (b *BBC) Len() int { return b.nbits }

// Words returns the physical size in 32-bit words, rounded up.
func (b *BBC) Words() int { return (len(b.data) + 3) / 4 }

// SizeBytes returns the compressed size.
func (b *BBC) SizeBytes() int { return len(b.data) }

// Count returns the number of set bits, counting fill runs in O(1); the
// padding-zero invariant makes masking unnecessary.
func (b *BBC) Count() int {
	total := 0
	var t bbcTokIter
	t.reset(b.data)
	for t.valid() {
		if t.fill {
			if t.fb == 0xFF {
				total += 8 * t.n
			}
		} else {
			for _, v := range t.lit[t.lp : t.lp+t.n] {
				total += bits.OnesCount8(v)
			}
		}
		t.consume(t.n)
	}
	if rem := b.nbits % 8; rem != 0 {
		// A one-fill may cover the padded final byte; subtract its padding.
		need := (b.nbits + 7) / 8
		total -= bits.OnesCount8(b.byteAt(need-1) &^ (byte(1)<<uint(rem) - 1))
	}
	return total
}

// CountRange returns the number of set bits in [from, to).
func (b *BBC) CountRange(from, to int) int { return genericCountRange(b, from, to) }

// CountUnits reports the set-bit count of each unitSize-bit unit.
func (b *BBC) CountUnits(unitSize int) []int { return genericCountUnits(b, unitSize) }

// Get reports the value of logical bit i.
func (b *BBC) Get(i int) bool {
	if i < 0 || i >= b.nbits {
		panic(fmt.Sprintf("bitvec: Get(%d) out of range [0,%d)", i, b.nbits))
	}
	return b.byteAt(i/8)&(1<<uint(i%8)) != 0
}

// Iterate calls fn for each set bit in ascending order.
func (b *BBC) Iterate(fn func(pos int) bool) { genericIterate(b, fn) }

// WriteIDs stores id into dst at every set-bit position.
func (b *BBC) WriteIDs(dst []int32, id int32) { genericWriteIDs(b, dst, id) }

// And returns b AND o; a BBC pair merges byte runs on the compressed form.
func (b *BBC) And(o Bitmap) Bitmap { return b.binaryOp(o, opAnd) }

// Or returns b OR o.
func (b *BBC) Or(o Bitmap) Bitmap { return b.binaryOp(o, opOr) }

// Xor returns b XOR o.
func (b *BBC) Xor(o Bitmap) Bitmap { return b.binaryOp(o, opXor) }

// AndNot returns b AND NOT o.
func (b *BBC) AndNot(o Bitmap) Bitmap { return b.binaryOp(o, opAndNot) }

func (b *BBC) binaryOp(o Bitmap, k opKind) Bitmap {
	ob, ok := o.(*BBC)
	if !ok {
		return genericBinary(b, o, k)
	}
	return bbcBinary(b, ob, k)
}

// bbcBinary merges two BBC streams byte-run by byte-run: aligned fill runs
// combine in O(1), literal regions byte-wise, with the output re-coalesced
// by bbcWriter. Both operands keep zero padding, so the result does too
// (x OP y over zero bits yields zero for all four ops).
func bbcBinary(a, b *BBC, k opKind) *BBC {
	if a.nbits != b.nbits {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", a.nbits, b.nbits))
	}
	countOp(k)
	var x, y bbcTokIter
	x.reset(a.data)
	y.reset(b.data)
	var w bbcWriter
	for x.valid() && y.valid() {
		if x.fill && y.fill {
			m := x.n
			if y.n < m {
				m = y.n
			}
			w.putRun(byte(k.apply(uint32(x.fb), uint32(y.fb))), m)
			x.consume(m)
			y.consume(m)
			continue
		}
		w.putByte(byte(k.apply(uint32(x.cur()), uint32(y.cur()))))
		x.consume(1)
		y.consume(1)
	}
	return &BBC{data: w.bytes(), nbits: a.nbits}
}

// Not returns the complement of b within its logical length.
func (b *BBC) Not() Bitmap {
	tel.opNot.Inc()
	total := (b.nbits + 7) / 8
	rem := b.nbits % 8
	var t bbcTokIter
	t.reset(b.data)
	var w bbcWriter
	pos := 0
	for t.valid() {
		if t.fill {
			m := t.n
			if rem != 0 && pos+m == total {
				m-- // hold back the final byte for padding masking
			}
			if m > 0 {
				w.putRun(^t.fb, m)
				pos += m
				t.consume(m)
				continue
			}
		}
		v := ^t.cur()
		if rem != 0 && pos == total-1 {
			v &= byte(1)<<uint(rem) - 1
		}
		w.putByte(v)
		pos++
		t.consume(1)
	}
	return &BBC{data: w.bytes(), nbits: b.nbits}
}

// AndCount returns Count(b AND o) without materializing the result.
func (b *BBC) AndCount(o Bitmap) int { return b.binaryCount(o, opAnd) }

// OrCount returns Count(b OR o) without materializing the result.
func (b *BBC) OrCount(o Bitmap) int { return b.binaryCount(o, opOr) }

// XorCount returns Count(b XOR o) without materializing the result.
func (b *BBC) XorCount(o Bitmap) int { return b.binaryCount(o, opXor) }

// AndNotCount returns Count(b AND NOT o) without materializing the result.
func (b *BBC) AndNotCount(o Bitmap) int { return b.binaryCount(o, opAndNot) }

func (b *BBC) binaryCount(o Bitmap, k opKind) int {
	ob, ok := o.(*BBC)
	if !ok {
		return genericBinaryCount(b, o, k)
	}
	if b.nbits != ob.nbits {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", b.nbits, ob.nbits))
	}
	var x, y bbcTokIter
	x.reset(b.data)
	y.reset(ob.data)
	total := 0
	for x.valid() && y.valid() {
		if x.fill && y.fill {
			m := x.n
			if y.n < m {
				m = y.n
			}
			if byte(k.apply(uint32(x.fb), uint32(y.fb))) == 0xFF {
				total += 8 * m
			}
			x.consume(m)
			y.consume(m)
			continue
		}
		total += bits.OnesCount8(byte(k.apply(uint32(x.cur()), uint32(y.cur()))))
		x.consume(1)
		y.consume(1)
	}
	if rem := b.nbits % 8; rem != 0 {
		// Aligned one-fills may have counted the padded final byte in full;
		// recount it masked.
		need := (b.nbits + 7) / 8
		last := byte(k.apply(uint32(b.byteAt(need-1)), uint32(ob.byteAt(need-1))))
		total -= bits.OnesCount8(last &^ (byte(1)<<uint(rem) - 1))
	}
	return total
}

// Clone returns a deep copy.
func (b *BBC) Clone() Bitmap {
	return &BBC{data: append([]byte(nil), b.data...), nbits: b.nbits}
}

// Equal reports whether two bitmaps have identical logical contents.
func (b *BBC) Equal(o Bitmap) bool {
	if ob, ok := o.(*BBC); ok {
		if b.nbits != ob.nbits {
			return false
		}
		if bytes.Equal(b.data, ob.data) {
			return true
		}
		// Encodings may differ physically (split runs); fall through.
	}
	return genericEqual(b, o)
}

// Stats describes the physical composition. For the byte-aligned stream the
// WAH word tallies don't apply; PhysicalBytes carries the true footprint.
// Stats walks the token stream once. The word-kind tallies are
// codec-native: FillWords counts run tokens (not 32-bit words),
// LiteralWords counts literal payload bytes, and FilledSegments is the
// 31-bit segments the run bytes cover (rounded down — the figure answers
// "how many segment-sized steps did compression skip").
func (b *BBC) Stats() Stats {
	st := Stats{
		Bits:          b.nbits,
		SetBits:       b.Count(),
		PhysicalBytes: b.SizeBytes(),
	}
	var t bbcTokIter
	t.reset(b.data)
	runBits := 0
	for t.valid() {
		if t.fill {
			st.FillWords++
			if t.fb == 0 {
				st.ZeroFillWords++
			} else {
				st.OneFillWords++
			}
			runBits += 8 * t.n
		} else {
			st.LiteralWords += t.n
		}
		t.consume(t.n)
	}
	st.FilledSegments = runBits / SegmentBits
	return st
}

// Runs streams the contents at 31-bit segment granularity directly from the
// byte stream: fill runs covering ≥31 homogeneous bits become fill runs
// without decoding, and segment boundaries are assembled through a bit
// accumulator.
func (b *BBC) Runs() RunReader {
	r := &bbcRunReader{segsLeft: (b.nbits + SegmentBits - 1) / SegmentBits}
	r.t.reset(b.data)
	return r
}

type bbcRunReader struct {
	t        bbcTokIter
	acc      uint64 // pending bits, LSB first
	nacc     uint   // number of pending bits
	segsLeft int
}

func (r *bbcRunReader) NextRun() (Run, bool) {
	if r.segsLeft == 0 {
		return Run{}, false
	}
	// Fill fast path: the pending bits (if any) agree with the current byte
	// run's fill value, and together they cover at least one full segment.
	if r.t.valid() && r.t.fill {
		bit := uint32(0)
		if r.t.fb == 0xFF {
			bit = 1
		}
		homogeneous := r.nacc == 0 ||
			(bit == 0 && r.acc == 0) ||
			(bit == 1 && r.acc == uint64(1)<<r.nacc-1)
		if homogeneous {
			avail := int(r.nacc) + 8*r.t.n
			segs := avail / SegmentBits
			if segs > r.segsLeft {
				segs = r.segsLeft
			}
			if bit == 1 && r.segsLeft*SegmentBits > avail+8*r.remStreamBytes() {
				// Guard (unreachable for valid streams): never let a one-fill
				// cover segments the stream doesn't back.
				segs = 0
			}
			if segs > 0 {
				used := segs*SegmentBits - int(r.nacc) // bits taken from the byte run
				fullBytes := used / 8
				remBits := used % 8
				r.t.consume(fullBytes)
				r.acc, r.nacc = 0, 0
				if remBits > 0 {
					r.acc = uint64(r.t.cur() >> uint(remBits))
					r.nacc = 8 - uint(remBits)
					r.t.consume(1)
				}
				r.segsLeft -= segs
				return Run{Fill: true, Bit: bit, N: segs}, true
			}
		}
	}
	w := r.readBits(SegmentBits)
	r.segsLeft--
	if w == 0 {
		return Run{Fill: true, N: 1}, true
	}
	return Run{N: 1, Word: w}, true
}

// remStreamBytes reports the bytes remaining in the token stream beyond the
// current run (conservative; only used by the one-fill guard).
func (r *bbcRunReader) remStreamBytes() int {
	return len(r.t.data) - r.t.i
}

// readBits pulls n (≤ 31) bits LSB-first, zero-padding past the stream end.
func (r *bbcRunReader) readBits(n uint) uint32 {
	for r.nacc < n {
		var b byte
		if r.t.valid() {
			b = r.t.cur()
			r.t.consume(1)
		}
		r.acc |= uint64(b) << r.nacc
		r.nacc += 8
	}
	v := uint32(r.acc & (uint64(1)<<n - 1))
	r.acc >>= n
	r.nacc -= n
	return v
}

// bbcTokIter walks the token stream as byte-granular runs: a fill run of n
// identical bytes, or a literal chunk viewed byte by byte.
type bbcTokIter struct {
	data []byte
	i    int
	fill bool
	fb   byte   // fill byte (0x00 or 0xFF) when fill
	n    int    // remaining bytes in the current run
	lit  []byte // current literal chunk when !fill
	lp   int    // cursor within lit
}

func (t *bbcTokIter) reset(data []byte) {
	t.data = data
	t.i = 0
	t.n = 0
	t.load()
}

func (t *bbcTokIter) load() {
	t.n = 0
	for t.i < len(t.data) && t.n == 0 {
		tok := t.data[t.i]
		t.i++
		switch tok {
		case bbcZeroRun, bbcOneRun:
			v, k := binary.Uvarint(t.data[t.i:])
			if k <= 0 {
				// Validated streams never hit this; stop rather than spin.
				t.i = len(t.data)
				return
			}
			t.i += k
			t.fill = true
			t.fb = 0x00
			if tok == bbcOneRun {
				t.fb = 0xFF
			}
			t.n = int(v)
		default:
			cnt := int(tok) + 1
			if t.i+cnt > len(t.data) {
				t.i = len(t.data)
				return
			}
			t.fill = false
			t.lit = t.data[t.i : t.i+cnt]
			t.lp = 0
			t.n = cnt
			t.i += cnt
		}
	}
}

func (t *bbcTokIter) valid() bool { return t.n > 0 }

func (t *bbcTokIter) cur() byte {
	if t.fill {
		return t.fb
	}
	return t.lit[t.lp]
}

func (t *bbcTokIter) consume(k int) {
	t.n -= k
	if !t.fill {
		t.lp += k
	}
	if t.n <= 0 {
		t.load()
	}
}

// bbcWriter re-encodes a byte stream with run coalescing.
type bbcWriter struct {
	out  []byte
	lit  []byte
	fill byte
	run  int
}

func (w *bbcWriter) putByte(b byte) {
	if b == 0x00 || b == 0xFF {
		w.putRun(b, 1)
		return
	}
	w.flushRun()
	w.lit = append(w.lit, b)
	if len(w.lit) == bbcMaxLit {
		w.flushLit()
	}
}

func (w *bbcWriter) putRun(fb byte, n int) {
	if n <= 0 {
		return
	}
	w.flushLit()
	if w.run > 0 && w.fill == fb {
		w.run += n
		return
	}
	w.flushRun()
	w.fill = fb
	w.run = n
}

func (w *bbcWriter) flushLit() {
	if len(w.lit) == 0 {
		return
	}
	w.out = append(w.out, byte(len(w.lit)-1))
	w.out = append(w.out, w.lit...)
	w.lit = w.lit[:0]
}

func (w *bbcWriter) flushRun() {
	if w.run == 0 {
		return
	}
	tok := byte(bbcZeroRun)
	if w.fill == 0xFF {
		tok = bbcOneRun
	}
	w.out = append(w.out, tok)
	w.out = binary.AppendUvarint(w.out, uint64(w.run))
	w.run = 0
}

func (w *bbcWriter) bytes() []byte {
	w.flushLit()
	w.flushRun()
	return w.out
}

// vectorToBytes expands a WAH vector into a little-endian bit buffer.
func vectorToBytes(v *Vector) []byte { return bitmapToBytes(v) }

// bitmapToBytes expands any bitmap into a little-endian bit buffer, walking
// runs so solid regions become byte-range writes.
func bitmapToBytes(b Bitmap) []byte {
	n := b.Len()
	out := make([]byte, (n+7)/8)
	pos := 0
	var it bmIter
	it.reset(b.Runs())
	for it.ok && pos < n {
		if it.run.Fill {
			span := it.run.N * SegmentBits
			if it.run.Bit != 0 {
				end := pos + span
				if end > n {
					end = n
				}
				setBitRange(out, pos, end)
			}
			pos += span
			it.consume(it.run.N)
			continue
		}
		w := it.run.Word & literalMask
		for w != 0 {
			j := bits.TrailingZeros32(w)
			if p := pos + j; p < n {
				out[p/8] |= 1 << uint(p%8)
			}
			w &= w - 1
		}
		pos += SegmentBits
		it.consume(1)
	}
	return out
}

// setBitRange sets bits [from, to) of a little-endian bit buffer.
func setBitRange(out []byte, from, to int) {
	for from < to && from%8 != 0 {
		out[from/8] |= 1 << uint(from%8)
		from++
	}
	for from+8 <= to {
		out[from/8] = 0xFF
		from += 8
	}
	for from < to {
		out[from/8] |= 1 << uint(from%8)
		from++
	}
}

var _ Bitmap = (*BBC)(nil)
