package bitvec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStatsAccounting(t *testing.T) {
	var a Appender
	a.AppendFill(0, 10)
	a.AppendSegment(0x5)
	a.AppendFill(1, 3)
	v := a.Vector()
	st := v.Stats()
	if st.LiteralWords != 1 || st.FillWords != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.ZeroFillWords != 1 || st.OneFillWords != 1 {
		t.Fatalf("fill split %+v", st)
	}
	if st.FilledSegments != 13 {
		t.Fatalf("FilledSegments=%d", st.FilledSegments)
	}
	if st.Bits != 14*SegmentBits || st.SetBits != 2+3*SegmentBits {
		t.Fatalf("bit accounting %+v", st)
	}
	if r := st.CompressionRatio(); r <= 0 || r > 1 {
		t.Fatalf("ratio %g", r)
	}
	empty := (&Vector{}).Stats()
	if empty.CompressionRatio() != 0 {
		t.Fatal("empty ratio nonzero")
	}
}

func TestStatsConsistentWithWords(t *testing.T) {
	f := func(bs boolsValue) bool {
		v := FromBools(bs)
		st := v.Stats()
		return st.LiteralWords+st.FillWords == v.Words() &&
			st.SetBits == v.Count() && st.Bits == v.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDerivedCountsProperty(t *testing.T) {
	f := func(p pairValue) bool {
		va, vb := FromBools(p.A), FromBools(p.B)
		if va.OrCount(vb) != va.Or(vb).Count() {
			return false
		}
		if va.AndNotCount(vb) != va.AndNot(vb).Count() {
			return false
		}
		// Inclusion-exclusion sanity.
		return va.OrCount(vb)+va.AndCount(vb) == va.Count()+vb.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestJaccard(t *testing.T) {
	a := FromIndices(100, []int{1, 2, 3, 4})
	b := FromIndices(100, []int{3, 4, 5, 6})
	if j := a.Jaccard(b); math.Abs(j-2.0/6.0) > 1e-12 {
		t.Fatalf("Jaccard=%g want 1/3", j)
	}
	if j := a.Jaccard(a); j != 1 {
		t.Fatalf("self Jaccard=%g", j)
	}
	empty := FromBools(make([]bool, 100))
	if j := empty.Jaccard(empty); j != 1 {
		t.Fatalf("empty Jaccard=%g (defined as 1)", j)
	}
	if j := a.Jaccard(empty); j != 0 {
		t.Fatalf("disjoint Jaccard=%g", j)
	}
}
