package bitcache

import (
	"fmt"
	"sync"
	"testing"

	"insitubits/internal/bitvec"
)

// bm builds a small bitmap with a deterministic payload.
func bm(n, stride int) bitvec.Bitmap {
	bits := make([]bool, n)
	for i := 0; i < n; i += stride {
		bits[i] = true
	}
	return bitvec.FromBools(bits)
}

func TestGetPutCounters(t *testing.T) {
	c := New(1 << 20)
	if got := c.Get("k"); got != nil {
		t.Fatalf("empty cache returned %v", got)
	}
	v := bm(200, 3)
	c.Put("k", v, 7)
	if got := c.Get("k"); got != v {
		t.Fatalf("Get returned %v, want the cached bitmap", got)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry", s)
	}
	if s.Bytes != int64(v.SizeBytes()) {
		t.Fatalf("bytes = %d, want %d", s.Bytes, v.SizeBytes())
	}
	if !s.Enabled {
		t.Fatal("Enabled = false for a live cache")
	}
}

func TestByteBoundedEviction(t *testing.T) {
	v := bm(31*40, 2)
	one := int64(v.SizeBytes())
	c := New(3 * one) // room for exactly three entries
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), bm(31*40, 2))
	}
	s := c.Stats()
	if s.Entries != 3 || s.Evictions != 1 {
		t.Fatalf("stats = %+v, want 3 entries after 1 eviction", s)
	}
	if c.Get("k0") != nil {
		t.Fatal("k0 survived; LRU should have evicted the oldest entry")
	}
	// Touch k1, insert another: k2 (now least recent) must go, not k1.
	if c.Get("k1") == nil {
		t.Fatal("k1 missing")
	}
	c.Put("k4", bm(31*40, 2))
	if c.Get("k1") == nil {
		t.Fatal("recently used k1 was evicted")
	}
	if c.Get("k2") != nil {
		t.Fatal("least recently used k2 survived")
	}
	if got := c.Stats().Bytes; got > 3*one {
		t.Fatalf("bytes = %d exceeds bound %d", got, 3*one)
	}
}

func TestOversizedRejected(t *testing.T) {
	c := New(8)
	c.Put("big", bm(31*1000, 2))
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("oversized bitmap was admitted: %+v", s)
	}
}

func TestPutRefreshesExisting(t *testing.T) {
	c := New(1 << 20)
	c.Put("k", bm(310, 2))
	v2 := bm(3100, 2)
	c.Put("k", v2)
	if got := c.Get("k"); got != v2 {
		t.Fatal("refresh did not replace the cached bitmap")
	}
	if s := c.Stats(); s.Entries != 1 || s.Bytes != int64(v2.SizeBytes()) {
		t.Fatalf("stats after refresh = %+v", s)
	}
}

func TestInvalidateGeneration(t *testing.T) {
	c := New(1 << 20)
	c.Put("a", bm(310, 2), 1)
	c.Put("ab", bm(310, 3), 1, 2)
	c.Put("b", bm(310, 4), 2)
	c.Put("free", bm(310, 5)) // generation-free content entry
	c.InvalidateGeneration(1)
	if c.Get("a") != nil || c.Get("ab") != nil {
		t.Fatal("entries reading generation 1 survived invalidation")
	}
	if c.Get("b") == nil || c.Get("free") == nil {
		t.Fatal("unrelated entries were dropped")
	}
	if s := c.Stats(); s.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2", s.Invalidations)
	}
	c.InvalidateAll()
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 || s.Invalidations != 4 {
		t.Fatalf("stats after InvalidateAll = %+v", s)
	}
}

func TestNilCacheSafe(t *testing.T) {
	var c *Cache
	c.Put("k", bm(310, 2), 1)
	if c.Get("k") != nil {
		t.Fatal("nil cache returned a bitmap")
	}
	c.InvalidateGeneration(1)
	c.InvalidateAll()
	if s := c.Stats(); s.Enabled {
		t.Fatalf("nil cache reports enabled: %+v", s)
	}
	if New(0) != nil || New(-5) != nil {
		t.Fatal("New with a non-positive bound must disable caching")
	}
}

func TestKeyCanonicalization(t *testing.T) {
	if AndKey("x", "y") != AndKey("y", "x") {
		t.Fatal("AndKey is operand-order sensitive")
	}
	if OrKey("a", "b", "c") != OrKey("c", "a", "b") {
		t.Fatal("OrKey is operand-order sensitive")
	}
	if AndKey("x", "y") == OrKey("x", "y") {
		t.Fatal("AND and OR keys collide")
	}
	if BinKey(1, 2) == BinKey(2, 1) {
		t.Fatal("BinKey generation/bin collide")
	}
	if RangeKey(100, 0, 10) == RangeKey(100, 0, 11) {
		t.Fatal("RangeKey ignores bounds")
	}
}

func TestDefaultInstall(t *testing.T) {
	prev := Default()
	defer SetDefault(prev)
	c := New(1 << 16)
	SetDefault(c)
	if Default() != c {
		t.Fatal("SetDefault did not install")
	}
	SetDefault(nil)
	if Default() != nil {
		t.Fatal("SetDefault(nil) did not disable")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", i%17)
				if c.Get(k) == nil {
					c.Put(k, bm(31*(1+i%5), 2), uint64(i%3))
				}
				if i%50 == 0 {
					c.InvalidateGeneration(uint64(w % 3))
				}
			}
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	if s.Bytes < 0 || s.Entries < 0 {
		t.Fatalf("inconsistent stats after concurrent use: %+v", s)
	}
}
