package bitcache

import "insitubits/internal/telemetry"

// tel mirrors the package counters into the telemetry registry (and from
// there the Prometheus endpoint): cumulative hit/miss/evict/invalidate
// counts across every cache in the process, plus occupancy gauges for the
// default cache refreshed on SetDefault and via the status provider.
var tel struct {
	hits        *telemetry.Counter
	misses      *telemetry.Counter
	evictions   *telemetry.Counter
	invalidated *telemetry.Counter
	bytes       *telemetry.Gauge
	entries     *telemetry.Gauge
}

// SetTelemetry (re)binds the package's instruments to a registry; nil
// disables them. It also (re)publishes the "cache" live-status provider
// serving /debug/cache off the default cache.
func SetTelemetry(r *telemetry.Registry) {
	tel.hits = r.Counter("bitcache.hits")
	tel.misses = r.Counter("bitcache.misses")
	tel.evictions = r.Counter("bitcache.evictions")
	tel.invalidated = r.Counter("bitcache.invalidated")
	tel.bytes = r.Gauge("bitcache.bytes")
	tel.entries = r.Gauge("bitcache.entries")
	r.PublishStatus("cache", func() any {
		s := Default().Stats()
		publishGauges(Default())
		return s
	})
}

// publishGauges refreshes the occupancy gauges from a cache snapshot.
func publishGauges(c *Cache) {
	if tel.bytes == nil {
		return
	}
	s := c.Stats()
	tel.bytes.Set(s.Bytes)
	tel.entries.Set(int64(s.Entries))
}

func init() { SetTelemetry(telemetry.Default) }
