// Package bitcache is a size-bounded LRU of materialized intermediate
// bitmaps, shared by the query planner, the correlation miner, and (via the
// facade) the future query server. Entries are keyed by a canonicalized
// operand expression plus the generations of every index the expression
// reads, so a cached bitmap can never be served after any of its source
// indices changes: an in-situ step publish (or an in-place Recode) bumps
// the generation and invalidates every dependent entry.
//
// The bound is bytes of encoded bitmap payload, not entry count — a handful
// of dense intermediates must not pin out thousands of tiny WAH ones.
// Bitmaps are immutable by contract (index.Bitmap: "shared, do not
// mutate"), so Get returns the cached bitmap itself, never a copy.
//
// A nil *Cache is valid and disables caching: every method no-ops, so call
// sites need no branches. The process-wide default cache (Default /
// SetDefault) starts nil; enabling it is always an explicit choice, keeping
// the disabled query hot path at one atomic pointer load (the same budget
// discipline as the telemetry and tracing gates).
package bitcache

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"insitubits/internal/bitvec"
)

// Cache is the byte-bounded LRU. Safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element

	hits, misses, evictions, invalidations atomic.Int64
}

type entry struct {
	key  string
	gens []uint64
	bm   bitvec.Bitmap
	size int64
}

// New returns a cache bounded to maxBytes of encoded bitmap payload.
// maxBytes <= 0 returns nil (caching disabled).
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	return &Cache{maxBytes: maxBytes, ll: list.New(), entries: make(map[string]*list.Element)}
}

// Get returns the bitmap cached under key, or nil. Nil-safe.
func (c *Cache) Get(key string) bitvec.Bitmap {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		if m := tel.misses; m != nil {
			m.Inc()
		}
		return nil
	}
	c.ll.MoveToFront(el)
	bm := el.Value.(*entry).bm
	c.mu.Unlock()
	c.hits.Add(1)
	if h := tel.hits; h != nil {
		h.Inc()
	}
	return bm
}

// Put stores bm under key, tagged with the generations of every index the
// expression reads (none for generation-free content like range vectors).
// Oversized bitmaps (larger than the whole cache) are rejected silently;
// existing entries are refreshed in place. Nil-safe on both receiver and bm.
func (c *Cache) Put(key string, bm bitvec.Bitmap, gens ...uint64) {
	if c == nil || bm == nil {
		return
	}
	size := int64(bm.SizeBytes())
	if size > c.maxBytes {
		return
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry)
		c.bytes += size - e.size
		e.bm, e.size = bm, size
		e.gens = append(e.gens[:0], gens...)
		c.ll.MoveToFront(el)
	} else {
		e := &entry{key: key, gens: append([]uint64(nil), gens...), bm: bm, size: size}
		c.entries[key] = c.ll.PushFront(e)
		c.bytes += size
	}
	evicted := 0
	for c.bytes > c.maxBytes {
		evicted += c.removeLocked(c.ll.Back())
	}
	c.mu.Unlock()
	c.noteEvictions(evicted)
}

// removeLocked drops one element; returns 1 if something was removed.
func (c *Cache) removeLocked(el *list.Element) int {
	if el == nil {
		return 0
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.size
	return 1
}

func (c *Cache) noteEvictions(n int) {
	if n == 0 {
		return
	}
	c.evictions.Add(int64(n))
	if ev := tel.evictions; ev != nil {
		ev.Add(int64(n))
	}
}

// InvalidateGeneration drops every entry whose expression read an index of
// generation gen — the step-publish hook: when the in-situ pipeline
// supersedes an index, all intermediates derived from it must go. Nil-safe.
func (c *Cache) InvalidateGeneration(gen uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	dropped := 0
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		for _, g := range el.Value.(*entry).gens {
			if g == gen {
				dropped += c.removeLocked(el)
				break
			}
		}
	}
	c.mu.Unlock()
	if dropped > 0 {
		c.invalidations.Add(int64(dropped))
		if inv := tel.invalidated; inv != nil {
			inv.Add(int64(dropped))
		}
	}
}

// InvalidateAll empties the cache. Nil-safe.
func (c *Cache) InvalidateAll() {
	if c == nil {
		return
	}
	c.mu.Lock()
	dropped := len(c.entries)
	c.ll.Init()
	c.entries = make(map[string]*list.Element)
	c.bytes = 0
	c.mu.Unlock()
	if dropped > 0 {
		c.invalidations.Add(int64(dropped))
		if inv := tel.invalidated; inv != nil {
			inv.Add(int64(dropped))
		}
	}
}

// Stats is a point-in-time snapshot of the cache's counters and occupancy
// (the /debug/cache payload and the `bitmapctl cache-stats` record).
type Stats struct {
	Enabled       bool  `json:"enabled"`
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	MaxBytes      int64 `json:"max_bytes"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
}

// Stats snapshots the cache. Nil-safe: a nil cache reports Enabled=false.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	s := Stats{
		Enabled:  true,
		Entries:  len(c.entries),
		Bytes:    c.bytes,
		MaxBytes: c.maxBytes,
	}
	c.mu.Unlock()
	s.Hits = c.hits.Load()
	s.Misses = c.misses.Load()
	s.Evictions = c.evictions.Load()
	s.Invalidations = c.invalidations.Load()
	return s
}

// ---------------------------------------------------------------------------
// Process-wide default cache. Starts nil (disabled); the facade's
// SetDefaultBitmapCache and the CLIs' -cache-mb flag install one. The
// query planner and the miner consult it when no per-call override is set.

var defaultCache atomic.Pointer[Cache]

// Default returns the process-wide cache, or nil when caching is disabled.
func Default() *Cache { return defaultCache.Load() }

// SetDefault installs (or, with nil, removes) the process-wide cache and
// refreshes the gauge pair so occupancy is visible even while idle.
func SetDefault(c *Cache) {
	defaultCache.Store(c)
	publishGauges(c)
}

// ---------------------------------------------------------------------------
// Key construction. Keys canonicalize the operand expression: commutative
// operators sort their operand keys, so and(a,b) and and(b,a) share an
// entry. Index-reading leaves embed the index generation; pure content
// leaves (ones / range indicators) are generation-free — their bits are
// fully determined by their parameters.

// BinKey names bin b of an index generation.
func BinKey(gen uint64, b int) string { return fmt.Sprintf("g%d:b%d", gen, b) }

// OnesKey names the all-ones vector over n bits.
func OnesKey(n int) string { return fmt.Sprintf("ones:%d", n) }

// RangeKey names the [lo,hi) indicator over n bits.
func RangeKey(n, lo, hi int) string { return fmt.Sprintf("range:%d:%d:%d", n, lo, hi) }

// AndKey canonicalizes an AND of sub-expressions (operand order ignored).
func AndKey(keys ...string) string { return opKey("and", keys) }

// OrKey canonicalizes an OR of sub-expressions (operand order ignored).
func OrKey(keys ...string) string { return opKey("or", keys) }

func opKey(op string, keys []string) string {
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	return op + "(" + strings.Join(sorted, ",") + ")"
}
