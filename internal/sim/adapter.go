package sim

import "fmt"

// FeedSimulator adapts an external data producer to the Simulator
// interface: an application that already has its own simulation loop pushes
// each time-step's fields into Feed, and the in-situ pipeline pulls them
// through Step. This is the integration point for codes the library does
// not ship (the role ADIOS-style I/O layers play for the paper's systems).
type FeedSimulator struct {
	name     string
	vars     []string
	elements int
	ranges   [][2]float64
	ch       chan []Field
	steps    int
}

// NewFeed creates the adapter and the channel the producer writes to.
// buffer is the channel capacity (the in-memory step queue between the
// producer and the pipeline).
func NewFeed(name string, vars []string, elements int, ranges [][2]float64, buffer int) (*FeedSimulator, chan<- []Field, error) {
	if len(vars) == 0 {
		return nil, nil, fmt.Errorf("sim: feed needs at least one variable")
	}
	if len(ranges) != len(vars) {
		return nil, nil, fmt.Errorf("sim: %d ranges for %d variables", len(ranges), len(vars))
	}
	if elements <= 0 {
		return nil, nil, fmt.Errorf("sim: %d elements", elements)
	}
	if buffer < 0 {
		buffer = 0
	}
	f := &FeedSimulator{
		name: name, vars: vars, elements: elements,
		ranges: ranges, ch: make(chan []Field, buffer),
	}
	return f, f.ch, nil
}

// Name implements Simulator.
func (f *FeedSimulator) Name() string { return f.name }

// Vars implements Simulator.
func (f *FeedSimulator) Vars() []string { return f.vars }

// Elements implements Simulator.
func (f *FeedSimulator) Elements() int { return f.elements }

// Ranges implements Simulator.
func (f *FeedSimulator) Ranges() [][2]float64 { return f.ranges }

// Step implements Simulator: it blocks until the producer supplies the
// next time-step. Malformed steps (wrong variable count or array length)
// panic, because by then the producer has already violated the contract it
// declared at NewFeed and no local recovery is possible. A closed channel
// also panics: the pipeline's Steps count must not exceed the number of
// steps the producer sends.
func (f *FeedSimulator) Step(nWorkers int) []Field {
	fields, ok := <-f.ch
	if !ok {
		panic(fmt.Sprintf("sim: feed %q closed after %d steps but the pipeline asked for more", f.name, f.steps))
	}
	if len(fields) != len(f.vars) {
		panic(fmt.Sprintf("sim: feed %q step %d has %d fields, declared %d", f.name, f.steps, len(fields), len(f.vars)))
	}
	for k, fd := range fields {
		if len(fd.Data) != f.elements {
			panic(fmt.Sprintf("sim: feed %q step %d field %q has %d elements, declared %d",
				f.name, f.steps, fd.Name, len(fd.Data), f.elements))
		}
		_ = k
	}
	f.steps++
	return fields
}

// StepsSeen reports how many steps have been consumed.
func (f *FeedSimulator) StepsSeen() int { return f.steps }

var _ Simulator = (*FeedSimulator)(nil)
