// Package lulesh implements a simplified Lagrangian shock-hydrodynamics
// proxy standing in for LULESH 2.0 [Karlin et al.]: a Sedov-type blast on a
// structured hex mesh. Per time-step it produces the paper's 12 nodal
// arrays — Coordinates, Force, Acceleration and Velocity, each in X/Y/Z —
// and, like the original, spends far more time simulating than the analysis
// phases spend analyzing, which is the property the Figure 9/10/12c
// experiments depend on.
//
// The physics is deliberately reduced (ideal-gas EOS, corner-force pressure
// gradients, scalar artificial viscosity) but the data characteristics match
// what the paper's evaluation needs: a shock front sweeping outward, 89-314
// distinct bins per array, and an evolving multi-variable distribution.
package lulesh

import (
	"fmt"
	"math"

	"insitubits/internal/sim"
)

const (
	gamma = 1.4  // ideal-gas ratio of specific heats
	dt    = 0.01 // fixed Lagrangian step
	qCoef = 1.5  // artificial-viscosity coefficient
)

// Sim is one blast-wave instance over an nx×ny×nz node mesh.
type Sim struct {
	nx, ny, nz int // node counts per axis
	// nodal arrays (length nx*ny*nz)
	posX, posY, posZ []float64
	velX, velY, velZ []float64
	accX, accY, accZ []float64
	frcX, frcY, frcZ []float64
	mass             []float64
	// element (cell) arrays, (nx-1)(ny-1)(nz-1)
	energy, energyNext, pressure, volume []float64
	step                                 int
}

const (
	energyCap = 35.0 // ceiling on per-element internal energy
	energyKap = 0.12 // inter-element energy transport coefficient
	workLimit = 0.10 // max fractional energy change per step from pdV work
	energyMin = 1e-6
)

// New builds the mesh with unit spacing and deposits the Sedov energy spike
// in the central element.
func New(nx, ny, nz int) (*Sim, error) {
	if nx < 3 || ny < 3 || nz < 3 {
		return nil, fmt.Errorf("lulesh: mesh %dx%dx%d too small (min 3 nodes per axis)", nx, ny, nz)
	}
	nn := nx * ny * nz
	ne := (nx - 1) * (ny - 1) * (nz - 1)
	s := &Sim{
		nx: nx, ny: ny, nz: nz,
		posX: make([]float64, nn), posY: make([]float64, nn), posZ: make([]float64, nn),
		velX: make([]float64, nn), velY: make([]float64, nn), velZ: make([]float64, nn),
		accX: make([]float64, nn), accY: make([]float64, nn), accZ: make([]float64, nn),
		frcX: make([]float64, nn), frcY: make([]float64, nn), frcZ: make([]float64, nn),
		mass:   make([]float64, nn),
		energy: make([]float64, ne), energyNext: make([]float64, ne),
		pressure: make([]float64, ne), volume: make([]float64, ne),
	}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				i := s.node(x, y, z)
				s.posX[i], s.posY[i], s.posZ[i] = float64(x), float64(y), float64(z)
				s.mass[i] = 1
			}
		}
	}
	for e := range s.volume {
		s.volume[e] = 1
		s.energy[e] = 1e-4 // cold background
	}
	// Sedov spike at the central element.
	s.energy[s.elem((nx-1)/2, (ny-1)/2, (nz-1)/2)] = 30
	return s, nil
}

func (s *Sim) node(x, y, z int) int { return (z*s.ny+y)*s.nx + x }
func (s *Sim) elem(x, y, z int) int { return (z*(s.ny-1)+y)*(s.nx-1) + x }

// Name implements sim.Simulator.
func (s *Sim) Name() string { return "lulesh" }

// Vars implements sim.Simulator: the paper's 12 arrays.
func (s *Sim) Vars() []string {
	return []string{
		"coord.x", "coord.y", "coord.z",
		"force.x", "force.y", "force.z",
		"accel.x", "accel.y", "accel.z",
		"veloc.x", "veloc.y", "veloc.z",
	}
}

// Elements implements sim.Simulator (nodes per array).
func (s *Sim) Elements() int { return s.nx * s.ny * s.nz }

// Ranges implements sim.Simulator with bounds that hold for the clamped
// dynamics below.
func (s *Sim) Ranges() [][2]float64 {
	span := float64(s.nx + s.ny + s.nz) // generous coordinate envelope
	return [][2]float64{
		{-2, span}, {-2, span}, {-2, span}, // coordinates
		{-50, 50}, {-50, 50}, {-50, 50}, // forces
		{-50, 50}, {-50, 50}, {-50, 50}, // accelerations
		{-10, 10}, {-10, 10}, {-10, 10}, // velocities
	}
}

// Step implements sim.Simulator: EOS → corner forces → integrate, each
// phase slab-parallel, then a fresh copy of all 12 arrays is returned.
func (s *Sim) Step(nWorkers int) []sim.Field {
	s.Advance(nWorkers)
	names := s.Vars()
	arrays := []*[]float64{
		&s.posX, &s.posY, &s.posZ,
		&s.frcX, &s.frcY, &s.frcZ,
		&s.accX, &s.accY, &s.accZ,
		&s.velX, &s.velY, &s.velZ,
	}
	out := make([]sim.Field, len(names))
	for k := range names {
		cp := make([]float64, len(*arrays[k]))
		copy(cp, *arrays[k])
		out[k] = sim.Field{Name: names[k], Data: cp}
	}
	return out
}

// Advance runs the physics of one step without copying out the state.
func (s *Sim) Advance(nWorkers int) {
	s.calcEOS(nWorkers)
	s.calcForces(nWorkers)
	s.integrate(nWorkers)
	s.step++
}

// calcEOS updates element pressure from energy and compression with an
// iterated sound-speed/viscosity evaluation — the compute-heavy kernel that
// gives the proxy its LULESH-like simulation cost.
func (s *Sim) calcEOS(nWorkers int) {
	ne := len(s.energy)
	sim.ParallelFor(ne, nWorkers, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			vol := s.volume[e]
			if vol < 0.1 {
				vol = 0.1
			}
			rho := 1.0 / vol
			p := (gamma - 1) * rho * s.energy[e]
			// Newton-iterated sound speed with artificial viscosity, kept
			// per-element to mirror LULESH's EOS inner loop cost.
			c := math.Sqrt(gamma * p * vol)
			for it := 0; it < 4; it++ {
				q := qCoef * rho * c * c * 1e-3
				c = math.Sqrt(gamma * (p + q) * vol)
			}
			s.pressure[e] = p + qCoef*rho*c*1e-3
		}
	})
}

// calcForces accumulates corner forces: each element pushes its 8 corner
// nodes outward along each axis in proportion to its pressure.
func (s *Sim) calcForces(nWorkers int) {
	nx, ny, nz := s.nx, s.ny, s.nz
	// Zero the force arrays, then gather per node (gather avoids races:
	// each node reads its up-to-8 adjacent elements).
	nn := nx * ny * nz
	sim.ParallelFor(nn, nWorkers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			z := i / (nx * ny)
			y := (i / nx) % ny
			x := i % nx
			var fx, fy, fz float64
			for dz := -1; dz <= 0; dz++ {
				ez := z + dz
				if ez < 0 || ez >= nz-1 {
					continue
				}
				for dy := -1; dy <= 0; dy++ {
					ey := y + dy
					if ey < 0 || ey >= ny-1 {
						continue
					}
					for dx := -1; dx <= 0; dx++ {
						ex := x + dx
						if ex < 0 || ex >= nx-1 {
							continue
						}
						p := s.pressure[s.elem(ex, ey, ez)] / 4
						// An element on the node's minus side (d == -1, node
						// is the element's + corner) pushes the node outward
						// in +; an element on the plus side pushes in -.
						if dx == -1 {
							fx += p
						} else {
							fx -= p
						}
						if dy == -1 {
							fy += p
						} else {
							fy -= p
						}
						if dz == -1 {
							fz += p
						} else {
							fz -= p
						}
					}
				}
			}
			s.frcX[i] = clamp(fx, -50, 50)
			s.frcY[i] = clamp(fy, -50, 50)
			s.frcZ[i] = clamp(fz, -50, 50)
		}
	})
}

// integrate advances accelerations, velocities and positions, then feeds
// the compression work back into element energy and volume.
func (s *Sim) integrate(nWorkers int) {
	nn := len(s.mass)
	sim.ParallelFor(nn, nWorkers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s.accX[i] = clamp(s.frcX[i]/s.mass[i], -50, 50)
			s.accY[i] = clamp(s.frcY[i]/s.mass[i], -50, 50)
			s.accZ[i] = clamp(s.frcZ[i]/s.mass[i], -50, 50)
			s.velX[i] = clamp((s.velX[i]+s.accX[i]*dt)*0.999, -10, 10)
			s.velY[i] = clamp((s.velY[i]+s.accY[i]*dt)*0.999, -10, 10)
			s.velZ[i] = clamp((s.velZ[i]+s.accZ[i]*dt)*0.999, -10, 10)
			s.posX[i] += s.velX[i] * dt
			s.posY[i] += s.velY[i] * dt
			s.posZ[i] += s.velZ[i] * dt
		}
	})
	// Element update: volume change from corner velocities' divergence
	// proxy, pdV work capped to ±workLimit of the current energy for
	// stability, and explicit energy transport between neighboring elements
	// so the shock front actually propagates outward. Double-buffered so
	// the result is independent of traversal order and worker count.
	ex1, ey1, ez1 := s.nx-1, s.ny-1, s.nz-1
	ne := len(s.energy)
	sim.ParallelFor(ne, nWorkers, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			ez := e / (ex1 * ey1)
			ey := (e / ex1) % ey1
			ex := e % ex1
			n000 := s.node(ex, ey, ez)
			n111 := s.node(ex+1, ey+1, ez+1)
			div := (s.velX[n111] - s.velX[n000]) +
				(s.velY[n111] - s.velY[n000]) +
				(s.velZ[n111] - s.velZ[n000])
			s.volume[e] = clamp(s.volume[e]*(1+div*dt), 0.2, 5)
			en := s.energy[e]
			work := clamp(s.pressure[e]*div*dt, -workLimit*en, workLimit*en)
			en -= work
			// Six-neighbor transport toward the local mean.
			var sum float64
			var cnt int
			if ex > 0 {
				sum += s.energy[e-1]
				cnt++
			}
			if ex < ex1-1 {
				sum += s.energy[e+1]
				cnt++
			}
			if ey > 0 {
				sum += s.energy[e-ex1]
				cnt++
			}
			if ey < ey1-1 {
				sum += s.energy[e+ex1]
				cnt++
			}
			if ez > 0 {
				sum += s.energy[e-ex1*ey1]
				cnt++
			}
			if ez < ez1-1 {
				sum += s.energy[e+ex1*ey1]
				cnt++
			}
			if cnt > 0 {
				en += energyKap * (sum/float64(cnt) - s.energy[e])
			}
			s.energyNext[e] = clamp(en, energyMin, energyCap)
		}
	})
	s.energy, s.energyNext = s.energyNext, s.energy
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// StepCount returns how many steps have run.
func (s *Sim) StepCount() int { return s.step }

var _ sim.Simulator = (*Sim)(nil)
