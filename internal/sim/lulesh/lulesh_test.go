package lulesh

import (
	"math"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(2, 5, 5); err == nil {
		t.Error("too-small mesh accepted")
	}
	if _, err := New(5, 5, 5); err != nil {
		t.Errorf("valid mesh rejected: %v", err)
	}
}

func TestTwelveArrays(t *testing.T) {
	s, err := New(6, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	fields := s.Step(2)
	if len(fields) != 12 {
		t.Fatalf("%d arrays, want the paper's 12", len(fields))
	}
	vars := s.Vars()
	if len(vars) != 12 {
		t.Fatalf("Vars lists %d names", len(vars))
	}
	for i, f := range fields {
		if f.Name != vars[i] {
			t.Fatalf("field %d named %q, Vars says %q", i, f.Name, vars[i])
		}
		if len(f.Data) != s.Elements() {
			t.Fatalf("field %q has %d elements, want %d", f.Name, len(f.Data), s.Elements())
		}
	}
	if len(s.Ranges()) != 12 {
		t.Fatalf("Ranges lists %d bounds", len(s.Ranges()))
	}
}

func TestValuesWithinDeclaredRanges(t *testing.T) {
	s, _ := New(10, 10, 10)
	ranges := s.Ranges()
	for step := 0; step < 40; step++ {
		fields := s.Step(4)
		for k, f := range fields {
			lo, hi := ranges[k][0], ranges[k][1]
			for i, v := range f.Data {
				if v < lo || v > hi || math.IsNaN(v) {
					t.Fatalf("step %d %s[%d] = %g outside [%g,%g]", step, f.Name, i, v, lo, hi)
				}
			}
		}
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	s1, _ := New(8, 8, 8)
	s8, _ := New(8, 8, 8)
	for step := 0; step < 8; step++ {
		f1 := s1.Step(1)
		f8 := s8.Step(8)
		for k := range f1 {
			for i := range f1[k].Data {
				if f1[k].Data[i] != f8[k].Data[i] {
					t.Fatalf("step %d %s[%d]: worker-count dependent", step, f1[k].Name, i)
				}
			}
		}
	}
}

func TestBlastWavePropagatesOutward(t *testing.T) {
	s, _ := New(12, 12, 12)
	node := func(x, y, z int) int { return (z*12+y)*12 + x }
	for i := 0; i < 60; i++ {
		s.Advance(4)
	}
	// A node three cells from the central deposit must have been pushed
	// outward along +x by the arriving pressure wave.
	outer := node(9, 6, 6)
	if s.posX[outer] <= 9.0001 {
		t.Fatalf("outer node did not move outward: posX=%g", s.posX[outer])
	}
	// The far corner should have moved much less than the shocked region.
	cornerDisp := math.Abs(s.posX[node(1, 1, 1)] - 1)
	shockDisp := math.Abs(s.posX[outer] - 9)
	if cornerDisp > shockDisp {
		t.Fatalf("corner moved more (%g) than shock front (%g)", cornerDisp, shockDisp)
	}
}

func TestEnergySpreadsOutward(t *testing.T) {
	// The transport term must carry energy from the deposit to neighboring
	// elements — the mechanism that makes the shock front move.
	s, _ := New(9, 9, 9) // 8x8x8 elements, deposit at element (3,3,3)... wait, (nx-1)/2 = 4
	center := s.elem(4, 4, 4)
	away := s.elem(6, 4, 4)
	if s.energy[away] > 1e-3 {
		t.Fatalf("element away from deposit already hot: %g", s.energy[away])
	}
	for i := 0; i < 40; i++ {
		s.Advance(2)
	}
	if s.energy[away] < 0.01 {
		t.Fatalf("energy did not spread: away=%g center=%g", s.energy[away], s.energy[center])
	}
	if s.energy[center] >= 30 {
		t.Fatalf("deposit did not relax: %g", s.energy[center])
	}
}

func TestEnergyStaysPositiveAndBounded(t *testing.T) {
	s, _ := New(8, 8, 8)
	for i := 0; i < 80; i++ {
		s.Advance(2)
		for j, e := range s.energy {
			if e <= 0 || e > energyCap+1e-9 || math.IsNaN(e) {
				t.Fatalf("step %d: energy[%d] = %g outside (0, %g]", i, j, e, energyCap)
			}
		}
	}
}

func TestStepCount(t *testing.T) {
	s, _ := New(5, 5, 5)
	s.Step(1)
	s.Advance(1)
	if s.StepCount() != 2 {
		t.Fatalf("StepCount=%d want 2", s.StepCount())
	}
}

func BenchmarkAdvance(b *testing.B) {
	s, _ := New(24, 24, 24)
	b.SetBytes(int64(8 * 12 * s.Elements()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Advance(4)
	}
}
