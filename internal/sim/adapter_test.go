package sim

import (
	"math"
	"testing"
)

func TestNewFeedValidation(t *testing.T) {
	if _, _, err := NewFeed("x", nil, 10, nil, 0); err == nil {
		t.Error("no variables accepted")
	}
	if _, _, err := NewFeed("x", []string{"a"}, 10, nil, 0); err == nil {
		t.Error("missing ranges accepted")
	}
	if _, _, err := NewFeed("x", []string{"a"}, 0, [][2]float64{{0, 1}}, 0); err == nil {
		t.Error("zero elements accepted")
	}
}

func TestFeedDeliversInOrder(t *testing.T) {
	f, ch, err := NewFeed("ext", []string{"v"}, 4, [][2]float64{{0, 100}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for step := 0; step < 5; step++ {
			data := make([]float64, 4)
			for i := range data {
				data[i] = float64(step)
			}
			ch <- []Field{{Name: "v", Data: data}}
		}
	}()
	for step := 0; step < 5; step++ {
		fields := f.Step(1)
		if fields[0].Data[0] != float64(step) {
			t.Fatalf("step %d delivered value %g", step, fields[0].Data[0])
		}
	}
	if f.StepsSeen() != 5 {
		t.Fatalf("StepsSeen=%d", f.StepsSeen())
	}
	if f.Name() != "ext" || f.Elements() != 4 || len(f.Vars()) != 1 || len(f.Ranges()) != 1 {
		t.Fatal("metadata accessors wrong")
	}
}

func TestFeedPanicsOnContractViolations(t *testing.T) {
	expectPanic := func(name string, fields []Field, closeCh bool) {
		t.Helper()
		f, ch, err := NewFeed("ext", []string{"a", "b"}, 3, [][2]float64{{0, 1}, {0, 1}}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if closeCh {
			close(ch)
		} else {
			ch <- fields
		}
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f.Step(1)
	}
	expectPanic("wrong field count", []Field{{Name: "a", Data: make([]float64, 3)}}, false)
	expectPanic("wrong length", []Field{
		{Name: "a", Data: make([]float64, 3)},
		{Name: "b", Data: make([]float64, 2)},
	}, false)
	expectPanic("closed channel", nil, true)
}

// TestFeedDrivesRealAnalysis plugs an external producer into the metric
// machinery end to end: a sine field whose phase advances per step.
func TestFeedDrivesRealAnalysis(t *testing.T) {
	const n = 310
	f, ch, err := NewFeed("wave", []string{"w"}, n, [][2]float64{{-1, 1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for step := 0; step < 3; step++ {
			data := make([]float64, n)
			for i := range data {
				data[i] = math.Sin(float64(i)/20 + float64(step))
			}
			ch <- []Field{{Name: "w", Data: data}}
		}
		close(ch)
	}()
	prev := f.Step(1)[0].Data
	for step := 1; step < 3; step++ {
		cur := f.Step(1)[0].Data
		same := true
		for i := range cur {
			if cur[i] != prev[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("step %d identical to previous", step)
		}
		prev = cur
	}
}
