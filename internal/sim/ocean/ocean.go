// Package ocean synthesizes a multi-variable ocean-state dataset standing in
// for the Parallel Ocean Program (POP) output the paper mines offline. The
// real POP simulation code was unavailable even to the paper's authors (they
// used an archived NetCDF dataset, likewise unavailable here), so this
// generator reproduces the *properties* the correlation-mining experiments
// need: multiple variables over a lon×lat×depth grid, large-scale smooth
// structure, and — going beyond the paper — *planted* regions where
// temperature and salinity are strongly coupled, providing ground truth the
// accuracy experiments can score against.
package ocean

import (
	"fmt"
	"math"
	"math/rand"

	"insitubits/internal/zorder"
)

// Region is an axis-aligned grid box (all bounds half-open).
type Region struct {
	LonLo, LonHi     int
	LatLo, LatHi     int
	DepthLo, DepthHi int
}

// Contains reports whether grid cell (lon, lat, depth) lies in the region.
func (r Region) Contains(lon, lat, depth int) bool {
	return lon >= r.LonLo && lon < r.LonHi &&
		lat >= r.LatLo && lat < r.LatHi &&
		depth >= r.DepthLo && depth < r.DepthHi
}

// Dataset is one generated ocean state.
type Dataset struct {
	NLon, NLat, NDepth int
	// Names lists the generated variables; Var fetches each by name.
	Names []string
	// Planted are the ground-truth regions where salinity tracks
	// temperature (the "currents" correlation mining should find).
	Planted []Region

	vars   map[string][]float64
	layout *zorder.Layout3
}

// Generate builds a deterministic dataset for the given grid and seed.
func Generate(nlon, nlat, ndepth int, seed int64) (*Dataset, error) {
	if nlon < 4 || nlat < 4 || ndepth < 2 {
		return nil, fmt.Errorf("ocean: grid %dx%dx%d too small", nlon, nlat, ndepth)
	}
	layout, err := zorder.NewLayout3(nlon, nlat, ndepth)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	d := &Dataset{
		NLon: nlon, NLat: nlat, NDepth: ndepth,
		Names:  []string{"temperature", "salinity", "density", "uvel", "vvel", "oxygen"},
		vars:   make(map[string][]float64),
		layout: layout,
	}
	n := nlon * nlat * ndepth
	temp := make([]float64, n)
	salt := make([]float64, n)
	dens := make([]float64, n)
	uvel := make([]float64, n)
	vvel := make([]float64, n)
	oxy := make([]float64, n)

	// Two planted currents: a surface western-boundary current and a deep
	// channel, together covering a modest fraction of the domain.
	d.Planted = []Region{
		{LonLo: nlon / 8, LonHi: nlon / 8 * 3, LatLo: nlat / 2, LatHi: nlat / 8 * 7, DepthLo: 0, DepthHi: max(1, ndepth/4)},
		{LonLo: nlon / 2, LonHi: nlon / 4 * 3, LatLo: nlat / 8, LatHi: nlat / 8 * 3, DepthLo: ndepth / 2, DepthHi: max(ndepth/2+1, ndepth/4*3)},
	}

	// Smooth random eddy field parameters.
	type eddy struct{ ax, ay, az, px, py, pz float64 }
	eddies := make([]eddy, 6)
	for i := range eddies {
		eddies[i] = eddy{
			ax: 2 + 6*r.Float64(), ay: 2 + 6*r.Float64(), az: 1 + 2*r.Float64(),
			px: 2 * math.Pi * r.Float64(), py: 2 * math.Pi * r.Float64(), pz: 2 * math.Pi * r.Float64(),
		}
	}
	smooth := func(x, y, z float64) float64 {
		v := 0.0
		for _, e := range eddies {
			v += math.Sin(e.ax*x+e.px) * math.Cos(e.ay*y+e.py) * math.Cos(e.az*z+e.pz)
		}
		return v / float64(len(eddies))
	}

	i := 0
	for depth := 0; depth < ndepth; depth++ {
		zf := float64(depth) / float64(ndepth)
		for lat := 0; lat < nlat; lat++ {
			yf := float64(lat) / float64(nlat)
			for lon := 0; lon < nlon; lon++ {
				xf := float64(lon) / float64(nlon)
				// Temperature: warm equator, cold poles and depths, eddies.
				t := 25 - 18*math.Abs(yf-0.5)*2 - 15*zf + 3*smooth(xf, yf, zf) + 0.2*r.NormFloat64()
				temp[i] = t
				// Salinity: independent large-scale pattern by default...
				s := 34 + 1.5*math.Sin(3*math.Pi*xf)*math.Cos(2*math.Pi*yf) + 0.5*zf + 0.2*r.NormFloat64()
				// ...but inside a planted current it tracks temperature.
				for _, reg := range d.Planted {
					if reg.Contains(lon, lat, depth) {
						s = 30 + 0.35*t + 0.05*r.NormFloat64()
						break
					}
				}
				salt[i] = s
				// Density: a simple linear EOS of T and S (globally coupled,
				// as in the real ocean).
				dens[i] = 1028 - 0.15*(t-10) + 0.78*(s-34) + 0.05*r.NormFloat64()
				// Velocities: geostrophic-looking swirls.
				uvel[i] = 0.8*smooth(xf+0.3, yf, zf) + 0.05*r.NormFloat64()
				vvel[i] = 0.8*smooth(xf, yf+0.3, zf) + 0.05*r.NormFloat64()
				// Oxygen: decays with depth and warmer water holds less.
				oxy[i] = 9 - 4*zf - 0.12*t + 1.2*smooth(xf, yf, zf+0.5) + 0.1*r.NormFloat64()
				i++
			}
		}
	}
	d.vars["temperature"] = temp
	d.vars["salinity"] = salt
	d.vars["density"] = dens
	d.vars["uvel"] = uvel
	d.vars["vvel"] = vvel
	d.vars["oxygen"] = oxy
	return d, nil
}

// N returns the number of grid cells.
func (d *Dataset) N() int { return d.NLon * d.NLat * d.NDepth }

// Var returns a variable's values in row-major (lon fastest) order.
func (d *Dataset) Var(name string) ([]float64, error) {
	v, ok := d.vars[name]
	if !ok {
		return nil, fmt.Errorf("ocean: unknown variable %q (have %v)", name, d.Names)
	}
	return v, nil
}

// VarCurveOrder returns a variable permuted into Z-order — the layout the
// mining optimization indexes so spatial units are contiguous bit ranges.
func (d *Dataset) VarCurveOrder(name string) ([]float64, error) {
	src, err := d.Var(name)
	if err != nil {
		return nil, err
	}
	dst := make([]float64, len(src))
	d.layout.Permute(dst, src)
	return dst, nil
}

// Layout exposes the Z-order permutation (for decoding mined unit ranges
// back into grid coordinates).
func (d *Dataset) Layout() *zorder.Layout3 { return d.layout }

// PlantedCurveCells marks, per Z-order position, whether the cell belongs
// to a planted region; accuracy scoring uses it as ground truth.
func (d *Dataset) PlantedCurveCells() []bool {
	out := make([]bool, d.N())
	i := 0
	for depth := 0; depth < d.NDepth; depth++ {
		for lat := 0; lat < d.NLat; lat++ {
			for lon := 0; lon < d.NLon; lon++ {
				for _, reg := range d.Planted {
					if reg.Contains(lon, lat, depth) {
						out[d.layout.CurvePos(i)] = true
						break
					}
				}
				i++
			}
		}
	}
	return out
}

// PlantedFraction returns the fraction of cells inside planted regions.
func (d *Dataset) PlantedFraction() float64 {
	cells := d.PlantedCurveCells()
	c := 0
	for _, b := range cells {
		if b {
			c++
		}
	}
	return float64(c) / float64(len(cells))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
