package ocean

import (
	"math"
	"testing"

	"insitubits/internal/binning"
	"insitubits/internal/index"
	"insitubits/internal/metrics"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(2, 10, 4, 1); err == nil {
		t.Error("tiny grid accepted")
	}
	if _, err := Generate(16, 16, 4, 1); err != nil {
		t.Errorf("valid grid rejected: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(16, 16, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(16, 16, 4, 42)
	ta, _ := a.Var("temperature")
	tb, _ := b.Var("temperature")
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("same seed differs at %d", i)
		}
	}
	c, _ := Generate(16, 16, 4, 43)
	tc, _ := c.Var("temperature")
	same := true
	for i := range ta {
		if ta[i] != tc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestAllVariablesPresent(t *testing.T) {
	d, _ := Generate(16, 16, 4, 1)
	if len(d.Names) < 6 {
		t.Fatalf("only %d variables", len(d.Names))
	}
	for _, name := range d.Names {
		v, err := d.Var(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(v) != d.N() {
			t.Fatalf("%s has %d cells, want %d", name, len(v), d.N())
		}
		for i, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("%s[%d] = %g", name, i, x)
			}
		}
	}
	if _, err := d.Var("nope"); err == nil {
		t.Fatal("unknown variable accepted")
	}
}

func TestCurveOrderIsPermutation(t *testing.T) {
	d, _ := Generate(8, 8, 8, 2)
	rm, _ := d.Var("salinity")
	cv, _ := d.VarCurveOrder("salinity")
	if len(cv) != len(rm) {
		t.Fatal("length changed")
	}
	// Same multiset: compare sums and the layout mapping directly.
	for i := range rm {
		if cv[d.Layout().CurvePos(i)] != rm[i] {
			t.Fatalf("curve order broken at %d", i)
		}
	}
}

func TestPlantedRegionsAreCorrelated(t *testing.T) {
	d, _ := Generate(32, 32, 8, 3)
	temp, _ := d.Var("temperature")
	salt, _ := d.Var("salinity")
	inside := [2][]float64{}
	outside := [2][]float64{}
	i := 0
	for depth := 0; depth < d.NDepth; depth++ {
		for lat := 0; lat < d.NLat; lat++ {
			for lon := 0; lon < d.NLon; lon++ {
				in := false
				for _, reg := range d.Planted {
					if reg.Contains(lon, lat, depth) {
						in = true
						break
					}
				}
				if in {
					inside[0] = append(inside[0], temp[i])
					inside[1] = append(inside[1], salt[i])
				} else {
					outside[0] = append(outside[0], temp[i])
					outside[1] = append(outside[1], salt[i])
				}
				i++
			}
		}
	}
	if len(inside[0]) == 0 {
		t.Fatal("no planted cells")
	}
	// Mutual information between T and S must be much higher inside the
	// planted regions than outside.
	mi := func(a, b []float64) float64 {
		lo1, hi1 := binning.MinMax(a)
		lo2, hi2 := binning.MinMax(b)
		m1, _ := binning.NewUniform(lo1, hi1+1e-9, 24)
		m2, _ := binning.NewUniform(lo2, hi2+1e-9, 24)
		j := metrics.JointHistogram(a, b, m1, m2)
		return metrics.MutualInformation(j, metrics.Histogram(a, m1), metrics.Histogram(b, m2), len(a))
	}
	in := mi(inside[0], inside[1])
	out := mi(outside[0], outside[1])
	if in < out+0.5 {
		t.Fatalf("planted MI %.3f not clearly above background %.3f", in, out)
	}
}

func TestPlantedCurveCellsMatchesFraction(t *testing.T) {
	d, _ := Generate(16, 16, 8, 4)
	cells := d.PlantedCurveCells()
	count := 0
	for _, c := range cells {
		if c {
			count++
		}
	}
	frac := d.PlantedFraction()
	if got := float64(count) / float64(len(cells)); math.Abs(got-frac) > 1e-12 {
		t.Fatalf("fraction mismatch: %g vs %g", got, frac)
	}
	if frac <= 0 || frac >= 0.5 {
		t.Fatalf("planted fraction %.2f implausible", frac)
	}
}

func TestOceanDataCompresses(t *testing.T) {
	// Smooth geophysical fields must index compactly — the premise of
	// using bitmaps for POP data offline.
	d, _ := Generate(32, 32, 8, 5)
	temp, _ := d.VarCurveOrder("temperature")
	lo, hi := binning.MinMax(temp)
	m, _ := binning.NewUniform(lo, hi+1e-9, 64)
	x := index.Build(temp, m)
	ratio := float64(x.SizeBytes()) / float64(8*len(temp))
	if ratio > 0.60 {
		t.Fatalf("ocean temperature index is %.0f%% of raw size", 100*ratio)
	}
	t.Logf("ocean temperature index: %.1f%% of raw", 100*ratio)
}
