package heat3d

import (
	"math"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(2, 10, 10); err == nil {
		t.Error("too-small grid accepted")
	}
	if _, err := New(10, 10, 10); err != nil {
		t.Errorf("valid grid rejected: %v", err)
	}
}

func TestStepShape(t *testing.T) {
	s, err := New(8, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	fields := s.Step(2)
	if len(fields) != 1 || fields[0].Name != "temperature" {
		t.Fatalf("fields = %v", fields)
	}
	if len(fields[0].Data) != 8*9*10 || s.Elements() != 720 {
		t.Fatalf("elements = %d", len(fields[0].Data))
	}
	if s.StepCount() != 1 {
		t.Fatalf("StepCount=%d", s.StepCount())
	}
	nx, ny, nz := s.Dims()
	if nx != 8 || ny != 9 || nz != 10 {
		t.Fatal("Dims wrong")
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	// The decomposition must not change the physics: 1 worker and 8 workers
	// produce bit-identical trajectories.
	s1, _ := New(12, 12, 12)
	s8, _ := New(12, 12, 12)
	for step := 0; step < 10; step++ {
		f1 := s1.Step(1)
		f8 := s8.Step(8)
		for i := range f1[0].Data {
			if f1[0].Data[i] != f8[0].Data[i] {
				t.Fatalf("step %d: worker-count dependent result at %d", step, i)
			}
		}
	}
}

func TestValuesWithinDeclaredRange(t *testing.T) {
	s, _ := New(16, 16, 16)
	lo, hi := s.Ranges()[0][0], s.Ranges()[0][1]
	for step := 0; step < 60; step++ {
		f := s.Step(4)
		for i, v := range f[0].Data {
			if v < lo || v > hi || math.IsNaN(v) {
				t.Fatalf("step %d: value %g at %d outside [%g,%g]", step, v, i, lo, hi)
			}
		}
	}
}

func TestHeatDiffuses(t *testing.T) {
	// With the source off, the interior hot core must lose heat to its
	// surroundings over time (pure diffusion).
	s, _ := New(20, 20, 20)
	s.SourceEnabled = false
	at := func(x, y, z int) int { return (z*20+y)*20 + x }
	// Peak of the hot intrusion, away from the basal plate's influence.
	peak := func() float64 {
		max := -1.0
		for z := 5; z < 19; z++ {
			for y := 1; y < 19; y++ {
				for x := 1; x < 19; x++ {
					if v := s.Temperature()[at(x, y, z)]; v > max {
						max = v
					}
				}
			}
		}
		return max
	}
	core0 := s.Temperature()[at(10, 10, 10)]
	peak0 := peak()
	for i := 0; i < 10; i++ {
		s.StepInto(4, nil)
	}
	core1 := s.Temperature()[at(10, 10, 10)]
	if !(core1 < core0) {
		t.Fatalf("hot core did not cool: %g -> %g", core0, core1)
	}
	if p := peak(); !(p < peak0) {
		t.Fatalf("intrusion peak did not decay: %g -> %g", peak0, p)
	}
	// Heat conservation sanity: a cell adjacent to the intrusion's flank
	// receives part of what the peak loses.
	if nb := s.Temperature()[at(10, 10, 13)]; nb <= 20 {
		t.Fatalf("flank cell never warmed above ambient: %g", nb)
	}
}

func TestDistributionEvolves(t *testing.T) {
	// The moving source must keep the value distribution changing — the
	// property time-step selection needs. Compare coarse histograms 30
	// steps apart.
	s, _ := New(16, 16, 16)
	hist := func(data []float64) [13]int {
		var h [13]int
		for _, v := range data {
			b := int(v / 10)
			if b < 0 {
				b = 0
			}
			if b > 12 {
				b = 12
			}
			h[b]++
		}
		return h
	}
	h0 := hist(s.Step(4)[0].Data)
	var hN [13]int
	for i := 0; i < 30; i++ {
		hN = hist(s.Step(4)[0].Data)
	}
	if h0 == hN {
		t.Fatal("value distribution static across 30 steps")
	}
}

func TestStepIntoReusesBuffer(t *testing.T) {
	s, _ := New(8, 8, 8)
	buf := make([]float64, s.Elements())
	got := s.StepInto(2, buf)
	if &got[0] != &buf[0] {
		t.Fatal("StepInto did not write into the provided buffer")
	}
}

func BenchmarkStep32(b *testing.B) {
	s, _ := New(32, 32, 32)
	b.SetBytes(int64(8 * s.Elements()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.StepInto(4, nil)
	}
}

func TestPlaneAccessors(t *testing.T) {
	s, _ := New(6, 5, 4)
	plane := s.PlaneZ(2, nil)
	if len(plane) != 30 {
		t.Fatalf("plane has %d cells", len(plane))
	}
	// Round trip through SetPlaneZ.
	for i := range plane {
		plane[i] = float64(i)
	}
	s.SetPlaneZ(2, plane)
	got := s.PlaneZ(2, make([]float64, 30))
	for i := range got {
		if got[i] != float64(i) {
			t.Fatalf("cell %d = %g", i, got[i])
		}
	}
	for name, fn := range map[string]func(){
		"PlaneZ out of range":    func() { s.PlaneZ(4, nil) },
		"SetPlaneZ out of range": func() { s.SetPlaneZ(-1, plane) },
		"SetPlaneZ wrong length": func() { s.SetPlaneZ(1, plane[:3]) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
