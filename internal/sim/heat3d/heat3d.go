// Package heat3d implements an explicit finite-difference 3-D heat-diffusion
// simulation, the reproduction's stand-in for the paper's Heat3D workload
// [dournac.org]: a 7-point stencil over a structured grid producing one
// temperature array per time-step. A slowly orbiting heat source keeps the
// value distribution evolving so time-step selection has real work to do.
package heat3d

import (
	"fmt"
	"math"

	"insitubits/internal/sim"
)

// Sim is a Heat3D instance. Create with New; not safe for concurrent Steps.
type Sim struct {
	nx, ny, nz int
	alpha      float64 // diffusion coefficient (stability requires < 1/6)
	cur, next  []float64
	step       int

	// SourceEnabled toggles the orbiting heat source (on by default).
	// Disabling it yields pure diffusion, useful for physics validation.
	SourceEnabled bool
}

// New allocates an nx×ny×nz simulation with a hot plate at z=0 and an
// initial Gaussian hot spot, mirroring the geologic heat-flow setup of the
// original code.
func New(nx, ny, nz int) (*Sim, error) {
	if nx < 3 || ny < 3 || nz < 3 {
		return nil, fmt.Errorf("heat3d: grid %dx%dx%d too small (min 3 per axis)", nx, ny, nz)
	}
	s := &Sim{
		nx: nx, ny: ny, nz: nz,
		alpha:         0.12,
		cur:           make([]float64, nx*ny*nz),
		next:          make([]float64, nx*ny*nz),
		SourceEnabled: true,
	}
	// Ambient rock at 20 with a hot basal plate and one narrow intrusion:
	// most of the domain sits on a constant plateau (long WAH fills), with
	// heat flowing in from the boundaries — the geologic heat-flow setting
	// of the original Heat3D code.
	cx, cy, cz := float64(nx)/2, float64(ny)/2, float64(nz)/2
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				dx, dy, dz := float64(x)-cx, float64(y)-cy, float64(z)-cz
				d2 := (dx*dx + dy*dy + dz*dz) / float64(nx*nx)
				v := 20 + 60*math.Exp(-48*d2) // narrow hot intrusion
				if z == 0 {
					v = 95 // hot basal plate
				}
				s.cur[s.at(x, y, z)] = v
			}
		}
	}
	return s, nil
}

func (s *Sim) at(x, y, z int) int { return (z*s.ny+y)*s.nx + x }

// Name implements sim.Simulator.
func (s *Sim) Name() string { return "heat3d" }

// Vars implements sim.Simulator.
func (s *Sim) Vars() []string { return []string{"temperature"} }

// Elements implements sim.Simulator.
func (s *Sim) Elements() int { return s.nx * s.ny * s.nz }

// Dims returns the grid shape.
func (s *Sim) Dims() (nx, ny, nz int) { return s.nx, s.ny, s.nz }

// Step implements sim.Simulator: one explicit Euler step of the 7-point
// stencil, slab-parallel over z, plus the orbiting source injection.
func (s *Sim) Step(nWorkers int) []sim.Field {
	s.StepInto(nWorkers, nil)
	out := make([]float64, len(s.cur))
	copy(out, s.cur)
	return []sim.Field{{Name: "temperature", Data: out}}
}

// StepInto advances one step and, when dst is non-nil, copies the new state
// into dst instead of allocating — the zero-copy path the in-situ pipeline
// uses when it immediately consumes and discards the data.
func (s *Sim) StepInto(nWorkers int, dst []float64) []float64 {
	nx, ny, nz := s.nx, s.ny, s.nz
	a := s.alpha
	cur, next := s.cur, s.next
	sim.ParallelFor(nz, nWorkers, func(zlo, zhi int) {
		for z := zlo; z < zhi; z++ {
			for y := 0; y < ny; y++ {
				base := (z*ny + y) * nx
				for x := 0; x < nx; x++ {
					i := base + x
					c := cur[i]
					if x == 0 || y == 0 || z == 0 || x == nx-1 || y == ny-1 || z == nz-1 {
						next[i] = c // Dirichlet: boundaries hold their value
						continue
					}
					lap := cur[i-1] + cur[i+1] +
						cur[i-nx] + cur[i+nx] +
						cur[i-nx*ny] + cur[i+nx*ny] - 6*c
					next[i] = c + a*lap
				}
			}
		}
	})
	s.cur, s.next = next, cur
	s.step++
	if s.SourceEnabled {
		s.injectSource()
	}
	if dst != nil {
		copy(dst, s.cur)
		return dst
	}
	return s.cur
}

// injectSource drives a hot spot around the mid-plane so the temperature
// distribution keeps changing; every 25 steps it jumps, giving the abrupt
// events time-step selection should single out.
func (s *Sim) injectSource() {
	period := 50.0
	phase := 2 * math.Pi * float64(s.step) / period
	jump := float64((s.step / 25) % 4)
	cx := int(float64(s.nx)/2 + float64(s.nx)/4*math.Cos(phase+jump))
	cy := int(float64(s.ny)/2 + float64(s.ny)/4*math.Sin(phase+jump))
	cz := s.nz / 2
	// A Gaussian bump keeps the field spatially smooth, which is what lets
	// WAH fills form (sharp discontinuities would fragment the bitvectors
	// and hurt the compression ratio the paper reports).
	rad := 4
	for z := cz - rad; z <= cz+rad; z++ {
		for y := cy - rad; y <= cy+rad; y++ {
			for x := cx - rad; x <= cx+rad; x++ {
				if x > 0 && y > 0 && z > 0 && x < s.nx-1 && y < s.ny-1 && z < s.nz-1 {
					dx, dy, dz := float64(x-cx), float64(y-cy), float64(z-cz)
					i := s.at(x, y, z)
					s.cur[i] = math.Min(120, s.cur[i]+12*math.Exp(-(dx*dx+dy*dy+dz*dz)/6))
				}
			}
		}
	}
}

// Ranges implements sim.Simulator: temperatures stay within [0, 130] by
// construction (ambient 20, plate 95, source clamped at 120).
func (s *Sim) Ranges() [][2]float64 { return [][2]float64{{0, 130}} }

// Temperature exposes the current state (read-only) for halo exchange in
// the cluster driver.
func (s *Sim) Temperature() []float64 { return s.cur }

// PlaneZ copies the nx×ny temperature plane at height z into dst (allocated
// when nil) — the payload a cluster node sends to its neighbor during halo
// exchange.
func (s *Sim) PlaneZ(z int, dst []float64) []float64 {
	if z < 0 || z >= s.nz {
		panic(fmt.Sprintf("heat3d: PlaneZ(%d) out of range [0,%d)", z, s.nz))
	}
	n := s.nx * s.ny
	if dst == nil {
		dst = make([]float64, n)
	}
	copy(dst, s.cur[z*n:(z+1)*n])
	return dst
}

// SetPlaneZ overwrites the plane at height z — how a cluster node installs
// the ghost layer received from its neighbor. Because the stencil holds
// boundary planes fixed within a step, planes 0 and nz-1 behave exactly
// like MPI ghost cells when refreshed before every step.
func (s *Sim) SetPlaneZ(z int, vals []float64) {
	n := s.nx * s.ny
	if z < 0 || z >= s.nz {
		panic(fmt.Sprintf("heat3d: SetPlaneZ(%d) out of range [0,%d)", z, s.nz))
	}
	if len(vals) != n {
		panic(fmt.Sprintf("heat3d: SetPlaneZ got %d values, want %d", len(vals), n))
	}
	copy(s.cur[z*n:(z+1)*n], vals)
}

// StepCount returns how many steps have run.
func (s *Sim) StepCount() int { return s.step }

var _ sim.Simulator = (*Sim)(nil)
