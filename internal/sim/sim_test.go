package sim

import (
	"sync"
	"testing"
)

func TestParallelForCoversRangeOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1001} {
		for _, w := range []int{1, 2, 3, 8, 200} {
			var mu sync.Mutex
			hits := make([]int, n)
			ParallelFor(n, w, func(lo, hi int) {
				mu.Lock()
				defer mu.Unlock()
				for i := lo; i < hi; i++ {
					hits[i]++
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, h)
				}
			}
		}
	}
}

func TestParallelForNonPositiveWorkers(t *testing.T) {
	sum := 0
	ParallelFor(10, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += i
		}
	})
	if sum != 45 {
		t.Fatalf("sum=%d", sum)
	}
	ParallelFor(10, -3, func(lo, hi int) {})
}

func TestParallelForActuallyParallel(t *testing.T) {
	// With 4 workers over 4 items, each span is a single element; verify
	// the spans are disjoint singletons (structure, not timing).
	var mu sync.Mutex
	var spans [][2]int
	ParallelFor(4, 4, func(lo, hi int) {
		mu.Lock()
		spans = append(spans, [2]int{lo, hi})
		mu.Unlock()
	})
	if len(spans) != 4 {
		t.Fatalf("%d spans, want 4", len(spans))
	}
	for _, s := range spans {
		if s[1]-s[0] != 1 {
			t.Fatalf("span %v not singleton", s)
		}
	}
}
