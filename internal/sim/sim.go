// Package sim defines the simulator abstraction the in-situ pipeline drives
// and small shared helpers. Concrete simulators live in the heat3d, lulesh
// and ocean subpackages, standing in for the paper's Heat3D, LULESH and POP
// workloads (see DESIGN.md for the substitution rationale).
package sim

import "sync"

// Field is one named output array of a time-step.
type Field struct {
	Name string
	Data []float64
}

// Simulator produces time-steps on demand. Implementations must be
// deterministic for a given construction so experiments are reproducible.
type Simulator interface {
	// Name identifies the workload ("heat3d", "lulesh", ...).
	Name() string
	// Vars lists the per-step output arrays in order.
	Vars() []string
	// Elements is the length of each output array.
	Elements() int
	// Step advances one time-step using up to nWorkers goroutines and
	// returns the output fields. The returned slices are owned by the
	// caller (the in-situ pipeline discards or summarizes them).
	Step(nWorkers int) []Field
	// Ranges returns conservative [min, max] value bounds per variable.
	// The pipeline derives one binning per variable from these so every
	// time-step is binned identically — the precondition for the paper's
	// cross-step metric computations ("the binning range of different
	// time-steps should be the same", §3.1).
	Ranges() [][2]float64
}

// ParallelFor splits [0, n) into one contiguous span per worker and runs fn
// on each span concurrently; it is the slab decomposition used by all
// simulators and the bitmap generators. A panic in any worker is re-raised
// on the calling goroutine (first panic wins), so callers can recover it —
// a worker goroutine panicking directly would kill the whole process with
// no chance of recovery.
func ParallelFor(n, workers int, fn func(lo, hi int)) {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var (
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	chunk := n / workers
	extra := n % workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + chunk
		if w < extra {
			hi++
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			fn(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
