package store

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"insitubits/internal/binning"
	"insitubits/internal/index"
	"insitubits/internal/machine"
)

func buildIndex(t *testing.T, seed int64, n, bins int) *index.Index {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	data := make([]float64, n)
	v := 5.0
	for i := range data {
		v += (r.Float64() - 0.5) * 0.1
		data[i] = math.Min(9.99, math.Max(0, v))
	}
	m, err := binning.NewUniform(0, 10, bins)
	if err != nil {
		t.Fatal(err)
	}
	return index.Build(data, m)
}

func TestIndexRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 31, 100, 5000} {
		x := buildIndex(t, int64(n)+1, n, 24)
		var buf bytes.Buffer
		written, err := WriteIndex(&buf, x)
		if err != nil {
			t.Fatal(err)
		}
		if written != int64(buf.Len()) {
			t.Fatalf("n=%d: reported %d bytes, wrote %d", n, written, buf.Len())
		}
		if got := IndexSize(x); got != written {
			t.Fatalf("n=%d: IndexSize=%d, actual=%d", n, got, written)
		}
		y, err := ReadIndex(&buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if y.N() != x.N() || y.Bins() != x.Bins() {
			t.Fatalf("n=%d: shape changed: %d/%d vs %d/%d", n, y.N(), y.Bins(), x.N(), x.Bins())
		}
		for b := 0; b < x.Bins(); b++ {
			if !x.Bitmap(b).Equal(y.Bitmap(b)) {
				t.Fatalf("n=%d: bin %d differs after round trip", n, b)
			}
			if x.Count(b) != y.Count(b) {
				t.Fatalf("n=%d: bin %d count differs", n, b)
			}
		}
		// The reconstructed mapper must bin identically.
		r := rand.New(rand.NewSource(99))
		for i := 0; i < 1000; i++ {
			v := r.Float64() * 10
			if x.Mapper().Bin(v) != y.Mapper().Bin(v) {
				t.Fatalf("n=%d: mapper disagrees at %g", n, v)
			}
		}
	}
}

func TestIndexFileOnDisk(t *testing.T) {
	x := buildIndex(t, 7, 4000, 32)
	path := filepath.Join(t.TempDir(), "step042.isbm")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteIndex(f, x); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	y, err := ReadIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	if y.N() != x.N() {
		t.Fatal("disk round trip changed N")
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE1234567890"),
		"truncated": func() []byte {
			x := buildIndex(t, 8, 500, 8)
			var buf bytes.Buffer
			if _, err := WriteIndex(&buf, x); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()[:buf.Len()/2]
		}(),
		"raw file as index": func() []byte {
			var buf bytes.Buffer
			if _, err := WriteRaw(&buf, []float64{1, 2, 3}); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}(),
	}
	for name, data := range cases {
		if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRawRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 1000} {
		data := make([]float64, n)
		for i := range data {
			data[i] = r.NormFloat64()
		}
		var buf bytes.Buffer
		written, err := WriteRaw(&buf, data)
		if err != nil {
			t.Fatal(err)
		}
		if written != RawSize(n) || written != int64(buf.Len()) {
			t.Fatalf("n=%d: size mismatch %d vs %d vs %d", n, written, RawSize(n), buf.Len())
		}
		got, err := ReadRaw(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: read %d elements", n, len(got))
		}
		for i := range data {
			if got[i] != data[i] {
				t.Fatalf("n=%d: element %d differs", n, i)
			}
		}
	}
}

func TestReadRawRejectsGarbage(t *testing.T) {
	if _, err := ReadRaw(bytes.NewReader([]byte("ISBMxxxxxxx"))); err == nil {
		t.Error("index magic accepted as raw")
	}
	if _, err := ReadRaw(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestCompressionRatioOnDisk(t *testing.T) {
	// The headline §2.2 claim measured at the file level: index file much
	// smaller than the raw file for smooth data.
	x := buildIndex(t, 10, 200000, 128)
	ratio := float64(IndexSize(x)) / float64(RawSize(x.N()))
	if ratio > 0.30 {
		t.Fatalf("on-disk ratio %.2f exceeds 30%%", ratio)
	}
	t.Logf("on-disk index = %.1f%% of raw", 100*ratio)
}

func TestMachineProfiles(t *testing.T) {
	for _, name := range []string{"xeon", "mic", "oakley"} {
		p, ok := machine.ByName(name)
		if !ok {
			t.Fatalf("profile %q missing", name)
		}
		if p.Cores <= 0 || p.DiskMBps <= 0 || p.NetMBps <= 0 || p.MemoryBytes <= 0 {
			t.Fatalf("profile %q has non-positive fields: %+v", name, p)
		}
	}
	if _, ok := machine.ByName("cray"); ok {
		t.Error("unknown profile resolved")
	}
	if machine.MIC.Cores <= machine.Xeon.Cores {
		t.Error("MIC should have more cores than Xeon")
	}
	if machine.MIC.DiskMBps >= machine.Xeon.DiskMBps {
		t.Error("MIC should have slower storage than Xeon")
	}
	if machine.MIC.MemoryBytes >= machine.Xeon.MemoryBytes {
		t.Error("MIC should have less memory than Xeon")
	}
}
