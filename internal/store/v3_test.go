package store

import (
	"bytes"
	"testing"
)

// The v3 containers claim end-to-end integrity: every byte is covered by a
// checksum (per-bin CRC32C, whole-file footer) or by structural validation.
// These tables prove the claim exhaustively for a representative file: flip
// one bit at EVERY byte offset and require the reader to error — never a
// panic, never a silently different result.

func TestV3IndexBitFlipTable(t *testing.T) {
	x := buildIndex(t, 29, 400, 4)
	var buf bytes.Buffer
	if _, err := WriteIndex(&buf, x); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()
	if _, err := ReadIndex(bytes.NewReader(base)); err != nil {
		t.Fatalf("pristine v3 file does not read back: %v", err)
	}
	for i := range base {
		d := append([]byte(nil), base...)
		d[i] ^= 1 << (i % 8)
		if _, err := ReadIndex(bytes.NewReader(d)); err == nil {
			t.Errorf("bit flip at byte %d (of %d) accepted", i, len(base))
		}
	}
}

func TestRawBitFlipTable(t *testing.T) {
	data := make([]float64, 64)
	for i := range data {
		data[i] = float64(i) * 0.25
	}
	var buf bytes.Buffer
	if _, err := WriteRaw(&buf, data); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()
	if _, err := ReadRaw(bytes.NewReader(base)); err != nil {
		t.Fatalf("pristine raw file does not read back: %v", err)
	}
	for i := range base {
		d := append([]byte(nil), base...)
		d[i] ^= 1 << (i % 8)
		if _, err := ReadRaw(bytes.NewReader(d)); err == nil {
			t.Errorf("bit flip at byte %d (of %d) accepted", i, len(base))
		}
	}
}

// TestV3TruncationTable cuts the v3 index file at every length short of
// whole; the strict footer + EOF contract must reject each prefix.
func TestV3TruncationTable(t *testing.T) {
	x := buildIndex(t, 31, 200, 3)
	var buf bytes.Buffer
	if _, err := WriteIndex(&buf, x); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()
	for cut := 0; cut < len(base); cut++ {
		if _, err := ReadIndex(bytes.NewReader(base[:cut])); err == nil {
			t.Errorf("truncation to %d of %d bytes accepted", cut, len(base))
		}
	}
}
