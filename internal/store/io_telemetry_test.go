package store

import (
	"bytes"
	"strings"
	"testing"

	"insitubits/internal/binning"
	"insitubits/internal/index"
	"insitubits/internal/telemetry"
)

// TestIOAccounting checks the satellite I/O instrumentation: every store
// read/write path records payload bytes and a wall-time sample, and the
// figures surface through both the JSON snapshot and the Prometheus text
// endpoint.
func TestIOAccounting(t *testing.T) {
	r := telemetry.NewRegistry()
	SetTelemetry(r)
	defer SetTelemetry(telemetry.Default)

	data := make([]float64, 500)
	for i := range data {
		data[i] = float64(i % 7)
	}
	m, err := binning.NewUniform(0, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	x := index.Build(data, m)

	var buf bytes.Buffer
	wrote, err := WriteIndex(&buf, x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	var rawBuf bytes.Buffer
	if _, err := WriteRaw(&rawBuf, data); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRaw(bytes.NewReader(rawBuf.Bytes())); err != nil {
		t.Fatal(err)
	}
	ds := NewDataset(0, 0, 0)
	if err := ds.Add("temp", data); err != nil {
		t.Fatal(err)
	}
	var dsBuf bytes.Buffer
	if _, err := WriteDataset(&dsBuf, ds); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDataset(bytes.NewReader(dsBuf.Bytes())); err != nil {
		t.Fatal(err)
	}

	snap := r.Snapshot()
	if got := snap.Counters["store.bytes_written"]; got < wrote {
		t.Errorf("bytes_written = %d, want >= %d", got, wrote)
	}
	if got := snap.Counters["store.bytes_read"]; got < wrote {
		t.Errorf("bytes_read = %d, want >= %d", got, wrote)
	}
	// Three writes and three reads were timed (index, raw, dataset).
	if h := snap.Histograms["store.write_ns"]; h.Count != 3 {
		t.Errorf("write_ns samples = %d, want 3", h.Count)
	}
	if h := snap.Histograms["store.read_ns"]; h.Count != 3 {
		t.Errorf("read_ns samples = %d, want 3", h.Count)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"insitubits_store_bytes_written_total",
		"insitubits_store_write_ns_count 3",
		"insitubits_store_read_ns_count 3",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Prometheus exposition missing %q", want)
		}
	}
}
