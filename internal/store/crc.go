package store

import (
	"errors"
	"hash/crc32"
	"io"
)

// The v3 containers checksum with CRC32C (the Castagnoli polynomial —
// hardware-accelerated on amd64/arm64 and the checksum the Roaring/Parquet
// lineage of formats settled on).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrChecksum marks a parsed file whose bytes disagree with a stored
// CRC32C — flipped bits rather than truncation. fsck classifies on it via
// errors.Is.
var ErrChecksum = errors.New("store: checksum mismatch")

// CRC32C returns the Castagnoli CRC of data — the whole-file checksum the
// run journal records per artifact and fsck re-derives.
func CRC32C(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// sumWriter tracks two running CRC32C digests over everything written: the
// whole-stream digest (the v3 footer checksum) and a resettable section
// digest (the per-bin checksum). It also counts bytes so writers can report
// exact on-disk sizes.
type sumWriter struct {
	w    io.Writer
	file uint32
	sect uint32
	n    int64
}

func (s *sumWriter) Write(p []byte) (int, error) {
	n, err := s.w.Write(p)
	s.file = crc32.Update(s.file, castagnoli, p[:n])
	s.sect = crc32.Update(s.sect, castagnoli, p[:n])
	s.n += int64(n)
	return n, err
}

// sumReader mirrors sumWriter on the read side: the digests cover exactly
// the bytes consumed, so a reader positioned after the last bin record
// holds the digest the writer stored in the footer.
type sumReader struct {
	r    io.Reader
	file uint32
	sect uint32
}

func (s *sumReader) Read(p []byte) (int, error) {
	n, err := s.r.Read(p)
	s.file = crc32.Update(s.file, castagnoli, p[:n])
	s.sect = crc32.Update(s.sect, castagnoli, p[:n])
	return n, err
}
