package store

import (
	"bytes"
	"testing"

	"insitubits/internal/binning"
	"insitubits/internal/index"
)

// Native fuzz harnesses; `go test` runs the seed corpus, `go test -fuzz`
// explores further. The invariant in all three: parse errors are fine,
// panics and runaway allocations are not.

func FuzzReadIndex(f *testing.F) {
	x := buildIndexF(f, 300, 8)
	var buf bytes.Buffer
	if _, err := WriteIndex(&buf, x); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("ISBM"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		y, err := ReadIndex(bytes.NewReader(data))
		if err == nil && y.Bins() == 0 {
			t.Fatal("parsed index with zero bins")
		}
	})
}

func FuzzReadRaw(f *testing.F) {
	var buf bytes.Buffer
	if _, err := WriteRaw(&buf, []float64{1, 2, 3}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("ISRW"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadRaw(bytes.NewReader(data))
	})
}

func FuzzReadDataset(f *testing.F) {
	d := NewDataset(2, 2, 1)
	if err := d.Add("v", []float64{1, 2, 3, 4}); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := WriteDataset(&buf, d); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("ISDS"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadDataset(bytes.NewReader(data))
	})
}

// buildIndexF is buildIndex for fuzz setup (testing.F instead of *testing.T).
func buildIndexF(f *testing.F, n, bins int) *index.Index {
	f.Helper()
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i%97) / 10
	}
	m, err := binning.NewUniform(0, 10, bins)
	if err != nil {
		f.Fatal(err)
	}
	return index.Build(data, m)
}
