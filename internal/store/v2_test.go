package store

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"insitubits/internal/codec"
)

// TestV2PreservesCodecs writes an index whose bins carry different codecs
// and checks each bin comes back under the same encoding with the same bits.
func TestV2PreservesCodecs(t *testing.T) {
	for _, id := range []codec.ID{codec.Auto, codec.WAH, codec.BBC, codec.Dense} {
		x := buildIndex(t, 21, 3000, 16).Recode(id)
		var buf bytes.Buffer
		written, err := WriteIndex(&buf, x)
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		if written != IndexSize(x) {
			t.Fatalf("%v: IndexSize=%d, wrote %d", id, IndexSize(x), written)
		}
		y, err := ReadIndex(&buf)
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		for b := 0; b < x.Bins(); b++ {
			if x.Codec(b) != y.Codec(b) {
				t.Fatalf("%v: bin %d codec changed %v -> %v", id, b, x.Codec(b), y.Codec(b))
			}
			if !x.Bitmap(b).Equal(y.Bitmap(b)) {
				t.Fatalf("%v: bin %d bits changed", id, b)
			}
		}
		// Ops on the reloaded index must behave: a full-range query selects
		// every element.
		if got := y.Query(0, 10).Count(); got != y.N() {
			t.Fatalf("%v: full-range query counts %d of %d after reload", id, got, y.N())
		}
	}
}

// TestV1Compat checks the legacy all-WAH layout still loads, bit-for-bit,
// regardless of what codecs the in-memory index used.
func TestV1Compat(t *testing.T) {
	x := buildIndex(t, 22, 2000, 12).Recode(codec.Auto)
	var buf bytes.Buffer
	if _, err := WriteIndexV1(&buf, x); err != nil {
		t.Fatal(err)
	}
	// The v1 header literally declares version 1.
	if ver := binary.LittleEndian.Uint32(buf.Bytes()[4:8]); ver != 1 {
		t.Fatalf("v1 writer stamped version %d", ver)
	}
	y, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < x.Bins(); b++ {
		if y.Codec(b) != codec.WAH {
			t.Fatalf("bin %d loaded from v1 as %v, want WAH", b, y.Codec(b))
		}
		if !x.Bitmap(b).Equal(y.Bitmap(b)) {
			t.Fatalf("bin %d differs after v1 round trip", b)
		}
	}
}

// v2File builds a small valid v2 index file for the corruption table to
// mutate, along with the offset of the first bin's codec tag.
func v2File(t *testing.T) ([]byte, int) {
	t.Helper()
	x := buildIndex(t, 23, 400, 4)
	var buf bytes.Buffer
	if _, err := WriteIndex(&buf, x); err != nil {
		t.Fatal(err)
	}
	// magic(4) + version(4) + n(8) + bins(4) + edges((bins+1)*8).
	firstTag := 4 + 4 + 8 + 4 + 8*(x.Bins()+1)
	return buf.Bytes(), firstTag
}

// TestReadIndexCorruptionTable mutates specific header and bin fields of a
// valid v2 file; every mutation must be rejected with an error, not a panic
// or a silently wrong index.
func TestReadIndexCorruptionTable(t *testing.T) {
	base, firstTag := v2File(t)
	mutate := func(f func(d []byte) []byte) []byte {
		return f(append([]byte(nil), base...))
	}
	cases := map[string][]byte{
		"bad magic": mutate(func(d []byte) []byte {
			d[0] = 'X'
			return d
		}),
		"unsupported version": mutate(func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[4:], 4)
			return d
		}),
		"zero bins": mutate(func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[16:], 0)
			return d
		}),
		"bin-count bomb": mutate(func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[16:], 1<<21)
			return d
		}),
		"NaN edge": mutate(func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[20:], math.Float64bits(math.NaN()))
			return d
		}),
		"+Inf edge": mutate(func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[28:], math.Float64bits(math.Inf(1)))
			return d
		}),
		"non-increasing edges": mutate(func(d []byte) []byte {
			// Swap the first two edges so the sequence decreases.
			a := binary.LittleEndian.Uint64(d[20:])
			b := binary.LittleEndian.Uint64(d[28:])
			binary.LittleEndian.PutUint64(d[20:], b)
			binary.LittleEndian.PutUint64(d[28:], a)
			return d
		}),
		"unknown codec tag": mutate(func(d []byte) []byte {
			d[firstTag] = 9
			return d
		}),
		"auto codec tag": mutate(func(d []byte) []byte {
			d[firstTag] = byte(codec.Auto)
			return d
		}),
		"payload bomb": mutate(func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[firstTag+1:], 0xFFFFFFFF)
			return d
		}),
		"truncated header":  base[:10],
		"truncated edges":   base[:30],
		"truncated payload": base[:len(base)-3],
	}
	for name, data := range cases {
		if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestValidEdges exercises the edge validator directly.
func TestValidEdges(t *testing.T) {
	good := [][]float64{
		{0, 1},
		{-5, -1, 0, 2.5, 1e18},
	}
	for _, e := range good {
		if err := validEdges(e); err != nil {
			t.Errorf("valid edges %v rejected: %v", e, err)
		}
	}
	bad := [][]float64{
		{0, 0},
		{1, 0},
		{0, math.NaN(), 2},
		{0, 1, math.Inf(1)},
		{math.Inf(-1), 0},
	}
	for _, e := range bad {
		if err := validEdges(e); err == nil {
			t.Errorf("invalid edges %v accepted", e)
		}
	}
}

func TestRecodeChangesOnDiskSize(t *testing.T) {
	x := buildIndex(t, 25, 50000, 32)
	wah := IndexSize(x.Recode(codec.WAH))
	dense := IndexSize(x.Recode(codec.Dense))
	auto := IndexSize(x.Recode(codec.Auto))
	if wah >= dense {
		t.Fatalf("smooth data: WAH file (%d) should be smaller than dense (%d)", wah, dense)
	}
	if auto > wah && auto > dense {
		t.Fatalf("auto (%d) larger than both wah (%d) and dense (%d)", auto, wah, dense)
	}
}
