package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Dataset is a named collection of equally long float64 arrays with grid
// metadata — the reproduction's stand-in for the NetCDF container the POP
// data ships in (the paper reads multi-variable NetCDF; this format carries
// the same structure with a fraction of the spec).
//
// File layout ("ISDS", little-endian):
//
//	magic   "ISDS"
//	version u32
//	dims    3 × u32          grid shape (nx, ny, nz); 0,0,0 if irregular
//	nvars   u32
//	per variable:
//	    nameLen u16, name bytes
//	    n       u64
//	    n × f64
type Dataset struct {
	NX, NY, NZ int
	Names      []string
	Vars       map[string][]float64
}

const datasetMagic = "ISDS"

// NewDataset creates an empty dataset with the given grid shape.
func NewDataset(nx, ny, nz int) *Dataset {
	return &Dataset{NX: nx, NY: ny, NZ: nz, Vars: map[string][]float64{}}
}

// Add appends a named variable; names must be unique and arrays must match
// the first variable's length.
func (d *Dataset) Add(name string, data []float64) error {
	if name == "" || len(name) > 65535 {
		return fmt.Errorf("store: invalid variable name %q", name)
	}
	if _, dup := d.Vars[name]; dup {
		return fmt.Errorf("store: duplicate variable %q", name)
	}
	if len(d.Names) > 0 && len(data) != len(d.Vars[d.Names[0]]) {
		return fmt.Errorf("store: variable %q has %d elements, dataset has %d",
			name, len(data), len(d.Vars[d.Names[0]]))
	}
	d.Names = append(d.Names, name)
	d.Vars[name] = data
	return nil
}

// Var fetches a variable by name.
func (d *Dataset) Var(name string) ([]float64, error) {
	v, ok := d.Vars[name]
	if !ok {
		return nil, fmt.Errorf("store: unknown variable %q (have %v)", name, d.Names)
	}
	return v, nil
}

// WriteDataset serializes the dataset.
func WriteDataset(w io.Writer, d *Dataset) (int64, error) {
	defer timeIO(tel.writeNs)()
	bw := bufio.NewWriter(w)
	total := int64(0)
	if _, err := bw.WriteString(datasetMagic); err != nil {
		return total, err
	}
	total += 4
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		total += int64(binary.Size(v))
		return nil
	}
	if err := put(uint32(version)); err != nil {
		return total, err
	}
	for _, dim := range []int{d.NX, d.NY, d.NZ} {
		if err := put(uint32(dim)); err != nil {
			return total, err
		}
	}
	if err := put(uint32(len(d.Names))); err != nil {
		return total, err
	}
	for _, name := range d.Names {
		if err := put(uint16(len(name))); err != nil {
			return total, err
		}
		if _, err := bw.WriteString(name); err != nil {
			return total, err
		}
		total += int64(len(name))
		data := d.Vars[name]
		if err := put(uint64(len(data))); err != nil {
			return total, err
		}
		if err := put(data); err != nil {
			return total, err
		}
	}
	if err := bw.Flush(); err != nil {
		return total, err
	}
	tel.bytesWritten.Add(total)
	return total, nil
}

// ReadDataset parses a dataset written by WriteDataset.
func ReadDataset(r io.Reader) (*Dataset, error) {
	defer timeIO(tel.readNs)()
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("store: reading magic: %w", err)
	}
	if string(magic[:]) != datasetMagic {
		return nil, fmt.Errorf("store: bad magic %q, not a dataset file", magic)
	}
	var ver uint32
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("store: unsupported dataset version %d", ver)
	}
	var dims [3]uint32
	if err := binary.Read(br, binary.LittleEndian, &dims); err != nil {
		return nil, err
	}
	var nvars uint32
	if err := binary.Read(br, binary.LittleEndian, &nvars); err != nil {
		return nil, err
	}
	if nvars > 4096 {
		return nil, fmt.Errorf("store: implausible variable count %d", nvars)
	}
	d := NewDataset(int(dims[0]), int(dims[1]), int(dims[2]))
	for i := uint32(0); i < nvars; i++ {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("store: variable %d header: %w", i, err)
		}
		nameBytes := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBytes); err != nil {
			return nil, err
		}
		var n uint64
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		if n > 1<<34 {
			return nil, fmt.Errorf("store: implausible element count %d", n)
		}
		data := make([]float64, n)
		if err := binary.Read(br, binary.LittleEndian, data); err != nil {
			return nil, fmt.Errorf("store: variable %q payload: %w", nameBytes, err)
		}
		if err := d.Add(string(nameBytes), data); err != nil {
			return nil, err
		}
		tel.bytesRead.Add(int64(8 * len(data)))
	}
	return d, nil
}
