package store

import (
	"fmt"
	"io"
	"path/filepath"

	"insitubits/internal/iosim"
)

// TempSuffix is appended to a file's name while AtomicWrite stages it. A
// crash can strand such a file; fsck and Resume quarantine strays by this
// suffix, and no committed artifact ever carries it.
const TempSuffix = ".tmp"

// AtomicWrite makes path either absent/old or complete/new, never torn:
// the content is staged in a temp file in the same directory, fsynced,
// renamed over path, and the directory fsynced so the rename itself is
// durable. fsys nil means the real filesystem. It returns the exact bytes
// written and their whole-file CRC32C — the pair the run journal records
// per artifact so fsck can verify files without parsing them.
//
// On any error the temp file is removed (best effort) and path is
// untouched, so a failed or crashed write never leaves a half-written
// artifact under the committed name.
func AtomicWrite(fsys iosim.FS, path string, write func(io.Writer) (int64, error)) (int64, uint32, error) {
	if fsys == nil {
		fsys = iosim.OS
	}
	tmp := path + TempSuffix
	f, err := fsys.Create(tmp)
	if err != nil {
		return 0, 0, fmt.Errorf("store: staging %s: %w", path, err)
	}
	cw := &sumWriter{w: f}
	if _, err := write(cw); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return cw.n, cw.file, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return cw.n, cw.file, fmt.Errorf("store: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return cw.n, cw.file, fmt.Errorf("store: closing %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return cw.n, cw.file, fmt.Errorf("store: committing %s: %w", path, err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return cw.n, cw.file, fmt.Errorf("store: syncing dir of %s: %w", path, err)
	}
	return cw.n, cw.file, nil
}

// AtomicWriteBytes is AtomicWrite for a prepared buffer (the manifest
// path), returning the content's CRC32C.
func AtomicWriteBytes(fsys iosim.FS, path string, data []byte) (uint32, error) {
	_, crc, err := AtomicWrite(fsys, path, func(w io.Writer) (int64, error) {
		n, err := w.Write(data)
		return int64(n), err
	})
	return crc, err
}
