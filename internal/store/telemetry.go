package store

import (
	"time"

	"insitubits/internal/telemetry"
)

// tel counts serialization traffic: artifact counts and payload bytes in
// each direction, across the index, raw-array and dataset formats, plus
// wall-time histograms for whole read/write calls (failed calls are timed
// too — a slow failure is still I/O spent). Nil-safe; bound to
// telemetry.Default at init.
var tel struct {
	bytesWritten   *telemetry.Counter
	bytesRead      *telemetry.Counter
	indexesWritten *telemetry.Counter
	indexesRead    *telemetry.Counter
	rawWritten     *telemetry.Counter
	rawRead        *telemetry.Counter
	writeNs        *telemetry.Histogram // ns per Write{Index,IndexV1,Raw,Dataset} call
	readNs         *telemetry.Histogram // ns per Read{Index,Raw,Dataset} call
}

// SetTelemetry (re)binds the package's instruments to a registry; nil
// disables them.
func SetTelemetry(r *telemetry.Registry) {
	tel.bytesWritten = r.Counter("store.bytes_written")
	tel.bytesRead = r.Counter("store.bytes_read")
	tel.indexesWritten = r.Counter("store.indexes_written")
	tel.indexesRead = r.Counter("store.indexes_read")
	tel.rawWritten = r.Counter("store.raw_written")
	tel.rawRead = r.Counter("store.raw_read")
	tel.writeNs = r.Histogram("store.write_ns")
	tel.readNs = r.Histogram("store.read_ns")
}

func init() { SetTelemetry(telemetry.Default) }

var noopTimeIO = func() {}

// timeIO times one store call into h:
//
//	defer timeIO(tel.writeNs)()
func timeIO(h *telemetry.Histogram) func() {
	if h == nil {
		return noopTimeIO
	}
	start := time.Now()
	return func() { h.Record(time.Since(start).Nanoseconds()) }
}
