package store

import "insitubits/internal/telemetry"

// tel counts serialization traffic: artifact counts and payload bytes in
// each direction, across the index, raw-array and dataset formats.
// Nil-safe; bound to telemetry.Default at init.
var tel struct {
	bytesWritten   *telemetry.Counter
	bytesRead      *telemetry.Counter
	indexesWritten *telemetry.Counter
	indexesRead    *telemetry.Counter
	rawWritten     *telemetry.Counter
	rawRead        *telemetry.Counter
}

// SetTelemetry (re)binds the package's instruments to a registry; nil
// disables them.
func SetTelemetry(r *telemetry.Registry) {
	tel.bytesWritten = r.Counter("store.bytes_written")
	tel.bytesRead = r.Counter("store.bytes_read")
	tel.indexesWritten = r.Counter("store.indexes_written")
	tel.indexesRead = r.Counter("store.indexes_read")
	tel.rawWritten = r.Counter("store.raw_written")
	tel.rawRead = r.Counter("store.raw_read")
}

func init() { SetTelemetry(telemetry.Default) }
