package store

import (
	"context"
	"io"

	"insitubits/internal/index"
	"insitubits/internal/telemetry"
)

// Context-aware wrappers around the container read/write entry points.
// When ctx carries an identity-trace span (internal/telemetry), each call
// records one "store.*" child span with its byte count, so a query or
// pipeline-step trace shows exactly which I/O it paid for. Without a span
// in ctx they cost one context lookup and delegate — the plain functions
// remain the canonical API for untraced callers.

// WriteIndexCtx is WriteIndex with a trace span recorded under ctx.
func WriteIndexCtx(ctx context.Context, w io.Writer, x *index.Index) (int64, error) {
	sp := telemetry.SpanFromContext(ctx).Child("store.write_index")
	n, err := WriteIndex(w, x)
	sp.SetAttrInt("bytes", n)
	sp.End()
	return n, err
}

// ReadIndexCtx is ReadIndex with a trace span recorded under ctx.
func ReadIndexCtx(ctx context.Context, r io.Reader) (*index.Index, error) {
	sp := telemetry.SpanFromContext(ctx).Child("store.read_index")
	x, err := ReadIndex(r)
	if x != nil {
		sp.SetAttrInt("bins", int64(x.Bins()))
		sp.SetAttrInt("elements", int64(x.N()))
	}
	sp.End()
	return x, err
}

// WriteRawCtx is WriteRaw with a trace span recorded under ctx.
func WriteRawCtx(ctx context.Context, w io.Writer, data []float64) (int64, error) {
	sp := telemetry.SpanFromContext(ctx).Child("store.write_raw")
	n, err := WriteRaw(w, data)
	sp.SetAttrInt("bytes", n)
	sp.End()
	return n, err
}

// ReadRawCtx is ReadRaw with a trace span recorded under ctx.
func ReadRawCtx(ctx context.Context, r io.Reader) ([]float64, error) {
	sp := telemetry.SpanFromContext(ctx).Child("store.read_raw")
	data, err := ReadRaw(r)
	sp.SetAttrInt("values", int64(len(data)))
	sp.End()
	return data, err
}
