package store

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestDatasetRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d := NewDataset(8, 4, 2)
	for _, name := range []string{"temperature", "salinity", "uvel"} {
		data := make([]float64, 64)
		for i := range data {
			data[i] = r.NormFloat64()
		}
		if err := d.Add(name, data); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	written, err := WriteDataset(&buf, d)
	if err != nil {
		t.Fatal(err)
	}
	if written != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, wrote %d", written, buf.Len())
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NX != 8 || got.NY != 4 || got.NZ != 2 {
		t.Fatalf("dims %d %d %d", got.NX, got.NY, got.NZ)
	}
	if len(got.Names) != 3 {
		t.Fatalf("names %v", got.Names)
	}
	for i, name := range d.Names {
		if got.Names[i] != name {
			t.Fatalf("name order changed: %v", got.Names)
		}
		a, _ := d.Var(name)
		b, err := got.Var(name)
		if err != nil {
			t.Fatal(err)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("%s[%d] differs", name, j)
			}
		}
	}
	if _, err := got.Var("nope"); err == nil {
		t.Fatal("unknown variable accepted")
	}
}

func TestDatasetAddValidation(t *testing.T) {
	d := NewDataset(2, 2, 1)
	if err := d.Add("", []float64{1}); err == nil {
		t.Error("empty name accepted")
	}
	if err := d.Add("a", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := d.Add("a", []float64{3, 4}); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := d.Add("b", []float64{1}); err == nil {
		t.Error("mismatched length accepted")
	}
}

func TestDatasetRejectsGarbage(t *testing.T) {
	if _, err := ReadDataset(bytes.NewReader([]byte("ISBMxxxx"))); err == nil {
		t.Error("index magic accepted as dataset")
	}
	if _, err := ReadDataset(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated payload.
	d := NewDataset(1, 1, 1)
	if err := d.Add("x", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := WriteDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDataset(bytes.NewReader(buf.Bytes()[:buf.Len()-4])); err == nil {
		t.Error("truncated dataset accepted")
	}
}

func TestDatasetEmpty(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteDataset(&buf, NewDataset(0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Names) != 0 {
		t.Fatalf("names %v", got.Names)
	}
}
