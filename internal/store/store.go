// Package store defines the on-disk formats: a compact binary container for
// compressed bitmap indices (what the in-situ pipeline writes instead of raw
// data) and a raw float64 array format for the full-data baseline. Both are
// little-endian, versioned, validated on read, and — from container version
// 3 — checksummed with CRC32C so torn writes and flipped bits are detected
// instead of silently decoded. docs/FORMATS.md specifies every layout
// byte-by-byte; docs/ROBUSTNESS.md covers the crash model.
//
// Index file layout (all integers little-endian):
//
//	magic   "ISBM" (4 bytes)
//	version u32 (3; version-1 and -2 files are still read)
//	n       u64  elements indexed
//	bins    u32
//	edges   (bins+1) × f64   bin boundaries (reconstructs the binning)
//	per bin (v3):
//	    codec  u8            codec tag (1=WAH, 2=BBC, 3=Dense)
//	    nbytes u32
//	    nbytes × u8          encoded payload
//	    crc    u32           CRC32C of codec ‖ nbytes ‖ payload
//	per bin (v2): as v3 without the trailing crc
//	per bin (v1):
//	    words u32
//	    words × u32          WAH-encoded words
//	footer (v3 only):
//	    magic "ISCK" (4 bytes)
//	    crc   u32            CRC32C of every byte before the footer
//
// The raw-array format gains the same footer; see WriteRaw.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"insitubits/internal/binning"
	"insitubits/internal/bitvec"
	"insitubits/internal/codec"
	"insitubits/internal/index"
)

const (
	indexMagic = "ISBM"
	rawMagic   = "ISRW"
	// footerMagic opens the whole-file checksum footer of the v3 index and
	// checksummed raw containers.
	footerMagic = "ISCK"
	// version is the container version WriteIndex produces; ReadIndex also
	// accepts the un-checksummed version 2 and the all-WAH version 1.
	version   = 3
	versionV2 = 2
	versionV1 = 1
	// maxBins bounds allocation from untrusted headers.
	maxBins = 1 << 20
	// maxWords bounds a single bitvector's word count on a v1 read.
	maxWords = 1 << 28
	// maxPayload bounds a single bin's byte count on a v2/v3 read.
	maxPayload = 4 * maxWords
	// footerSize is the byte size of the "ISCK" + crc footer.
	footerSize = 8
)

// WriteIndex serializes an index in the v3 format, preserving each bin's
// codec and protecting every region with CRC32C checksums (one per bin,
// one whole-file footer). It returns the number of bytes written so
// callers can account I/O; the return always equals IndexSize.
func WriteIndex(w io.Writer, x *index.Index) (int64, error) {
	defer timeIO(tel.writeNs)()
	bw := bufio.NewWriter(w)
	cw := &sumWriter{w: bw}
	if err := writeHeaderVersion(cw, x, version); err != nil {
		return cw.n, err
	}
	for b := 0; b < x.Bins(); b++ {
		cw.sect = 0
		if err := writeBinV2(cw, x, b); err != nil {
			return cw.n, err
		}
		if err := binary.Write(cw, binary.LittleEndian, cw.sect); err != nil {
			return cw.n, err
		}
	}
	fileCRC := cw.file
	if _, err := io.WriteString(cw, footerMagic); err != nil {
		return cw.n, err
	}
	if err := binary.Write(cw, binary.LittleEndian, fileCRC); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	tel.indexesWritten.Inc()
	tel.bytesWritten.Add(cw.n)
	return cw.n, nil
}

// WriteIndexV2 serializes an index in the version-2 layout (per-bin codec
// tags, no checksums). Kept so tools that must interoperate with pre-v3
// readers can still produce v2 files.
func WriteIndexV2(w io.Writer, x *index.Index) (int64, error) {
	defer timeIO(tel.writeNs)()
	bw := bufio.NewWriter(w)
	cw := &sumWriter{w: bw}
	if err := writeHeaderVersion(cw, x, versionV2); err != nil {
		return cw.n, err
	}
	for b := 0; b < x.Bins(); b++ {
		if err := writeBinV2(cw, x, b); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	tel.indexesWritten.Inc()
	tel.bytesWritten.Add(cw.n)
	return cw.n, nil
}

// writeBinV2 emits one codec-tagged bin record (the v2 layout, which v3
// wraps with a trailing checksum).
func writeBinV2(cw *sumWriter, x *index.Index, b int) error {
	bm := x.Bitmap(b)
	id := codec.Of(bm)
	if !id.Concrete() {
		return fmt.Errorf("store: bin %d has unknown codec", b)
	}
	payload := codec.Payload(bm)
	if _, err := cw.Write([]byte{byte(id)}); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint32(len(payload))); err != nil {
		return err
	}
	_, err := cw.Write(payload)
	return err
}

// WriteIndexV1 serializes an index in the legacy all-WAH version-1 layout,
// re-encoding non-WAH bins. Kept so compatibility tests (and tools that
// must interoperate with pre-v2 readers) can produce v1 files.
func WriteIndexV1(w io.Writer, x *index.Index) (int64, error) {
	defer timeIO(tel.writeNs)()
	bw := bufio.NewWriter(w)
	cw := &sumWriter{w: bw}
	if err := writeHeaderVersion(cw, x, versionV1); err != nil {
		return cw.n, err
	}
	for b := 0; b < x.Bins(); b++ {
		words := bitvec.ToVector(x.Bitmap(b)).RawWords()
		if err := binary.Write(cw, binary.LittleEndian, uint32(len(words))); err != nil {
			return cw.n, err
		}
		if err := binary.Write(cw, binary.LittleEndian, words); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	tel.indexesWritten.Inc()
	tel.bytesWritten.Add(cw.n)
	return cw.n, nil
}

func writeHeaderVersion(w io.Writer, x *index.Index, ver uint32) error {
	if _, err := io.WriteString(w, indexMagic); err != nil {
		return err
	}
	for _, v := range []any{ver, uint64(x.N()), uint32(x.Bins())} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, binning.Edges(x.Mapper()))
}

// IndexSize returns the exact byte size WriteIndex (v3) will produce,
// letting the pipeline account modelled I/O without serializing.
func IndexSize(x *index.Index) int64 {
	n := int64(4 + 4 + 8 + 4) // magic, version, n, bins
	n += int64(8 * (x.Bins() + 1))
	for b := 0; b < x.Bins(); b++ {
		n += 1 + 4 + int64(x.Bitmap(b).SizeBytes()) + 4 // tag, len, payload, crc
	}
	return n + footerSize
}

// validEdges rejects edges that would build a broken mapper: every edge
// must be finite and the sequence strictly increasing. (binning.NewExplicit
// re-checks monotonicity, but the store rejects non-finite values that a
// NaN/Inf-laden file would otherwise smuggle into query arithmetic.)
func validEdges(edges []float64) error {
	for i, e := range edges {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return fmt.Errorf("store: bin edge %d is not finite (%v)", i, e)
		}
		if i > 0 && edges[i-1] >= e {
			return fmt.Errorf("store: bin edges not strictly increasing at %d (%v >= %v)", i, edges[i-1], e)
		}
	}
	return nil
}

// ReadIndex parses an index written by WriteIndex (v3), the un-checksummed
// v2 writer, or the legacy v1 writer; v1 bins load as WAH. For v3 files
// every per-bin checksum and the whole-file footer are verified — a
// mismatch returns an error wrapping ErrChecksum, never a silently wrong
// index. Trailing bytes after the container are rejected for all versions.
func ReadIndex(r io.Reader) (*index.Index, error) {
	defer timeIO(tel.readNs)()
	cr := &sumReader{r: bufio.NewReader(r)}
	var magic [4]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("store: reading magic: %w", err)
	}
	if string(magic[:]) != indexMagic {
		return nil, fmt.Errorf("store: bad magic %q, not a bitmap index file", magic)
	}
	var ver uint32
	if err := binary.Read(cr, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != version && ver != versionV2 && ver != versionV1 {
		return nil, fmt.Errorf("store: unsupported index version %d", ver)
	}
	var n uint64
	if err := binary.Read(cr, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	var bins uint32
	if err := binary.Read(cr, binary.LittleEndian, &bins); err != nil {
		return nil, err
	}
	if bins == 0 || bins > maxBins {
		return nil, fmt.Errorf("store: implausible bin count %d", bins)
	}
	edges := make([]float64, bins+1)
	if err := binary.Read(cr, binary.LittleEndian, edges); err != nil {
		return nil, err
	}
	if err := validEdges(edges); err != nil {
		return nil, err
	}
	mapper, err := binning.NewExplicit(edges)
	if err != nil {
		return nil, fmt.Errorf("store: invalid edges: %w", err)
	}
	vecs := make([]bitvec.Bitmap, bins)
	for b := range vecs {
		var bm bitvec.Bitmap
		var err error
		switch ver {
		case versionV1:
			bm, err = readBinV1(cr, int(n))
		case versionV2:
			bm, err = readBinV2(cr, int(n))
		default:
			bm, err = readBinV3(cr, int(n))
		}
		if err != nil {
			return nil, fmt.Errorf("store: bin %d: %w", b, err)
		}
		vecs[b] = bm
	}
	if ver == version {
		if err := readFooter(cr); err != nil {
			return nil, err
		}
	}
	if err := expectEOF(cr); err != nil {
		return nil, err
	}
	x, err := index.FromParts(mapper, vecs, int(n))
	if err == nil {
		tel.indexesRead.Inc()
		tel.bytesRead.Add(IndexSize(x))
	}
	return x, err
}

// readFooter consumes and verifies the "ISCK" + CRC32C whole-file footer;
// cr's running digest must equal the stored value.
func readFooter(cr *sumReader) error {
	fileCRC := cr.file
	var magic [4]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return fmt.Errorf("store: reading checksum footer: %w", err)
	}
	if string(magic[:]) != footerMagic {
		return fmt.Errorf("store: bad footer magic %q: %w", magic, ErrChecksum)
	}
	var stored uint32
	if err := binary.Read(cr, binary.LittleEndian, &stored); err != nil {
		return fmt.Errorf("store: reading footer checksum: %w", err)
	}
	if stored != fileCRC {
		return fmt.Errorf("store: file checksum %08x, footer says %08x: %w", fileCRC, stored, ErrChecksum)
	}
	return nil
}

// expectEOF rejects trailing bytes: every container ends exactly where its
// layout says, so appended garbage (or a mislabelled version) cannot pass.
func expectEOF(r io.Reader) error {
	var one [1]byte
	if _, err := r.Read(one[:]); err != io.EOF {
		return fmt.Errorf("store: trailing data after container")
	}
	return nil
}

func readBinV1(r io.Reader, nbits int) (bitvec.Bitmap, error) {
	var words uint32
	if err := binary.Read(r, binary.LittleEndian, &words); err != nil {
		return nil, fmt.Errorf("header: %w", err)
	}
	if words > maxWords {
		return nil, fmt.Errorf("declares %d words", words)
	}
	raw := make([]uint32, words)
	if err := binary.Read(r, binary.LittleEndian, raw); err != nil {
		return nil, fmt.Errorf("payload: %w", err)
	}
	return bitvec.FromRawWords(raw, nbits)
}

func readBinV2(r io.Reader, nbits int) (bitvec.Bitmap, error) {
	var tag [1]byte
	if _, err := io.ReadFull(r, tag[:]); err != nil {
		return nil, fmt.Errorf("header: %w", err)
	}
	id := codec.ID(tag[0])
	if !id.Concrete() {
		return nil, fmt.Errorf("unknown codec tag %d", tag[0])
	}
	var nbytes uint32
	if err := binary.Read(r, binary.LittleEndian, &nbytes); err != nil {
		return nil, fmt.Errorf("header: %w", err)
	}
	if nbytes > maxPayload {
		return nil, fmt.Errorf("declares %d payload bytes", nbytes)
	}
	payload := make([]byte, nbytes)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("payload: %w", err)
	}
	return codec.New(id, payload, nbits)
}

// readBinV3 parses one checksummed bin record: the v2 record followed by a
// CRC32C of it. The checksum is verified before the payload is decoded, so
// a flipped bit can never reach the codec parsers as plausible input.
func readBinV3(cr *sumReader, nbits int) (bitvec.Bitmap, error) {
	cr.sect = 0
	var tag [1]byte
	if _, err := io.ReadFull(cr, tag[:]); err != nil {
		return nil, fmt.Errorf("header: %w", err)
	}
	var nbytes uint32
	if err := binary.Read(cr, binary.LittleEndian, &nbytes); err != nil {
		return nil, fmt.Errorf("header: %w", err)
	}
	if nbytes > maxPayload {
		return nil, fmt.Errorf("declares %d payload bytes", nbytes)
	}
	payload := make([]byte, nbytes)
	if _, err := io.ReadFull(cr, payload); err != nil {
		return nil, fmt.Errorf("payload: %w", err)
	}
	sect := cr.sect
	var stored uint32
	if err := binary.Read(cr, binary.LittleEndian, &stored); err != nil {
		return nil, fmt.Errorf("checksum: %w", err)
	}
	if stored != sect {
		return nil, fmt.Errorf("record checksum %08x, stored %08x: %w", sect, stored, ErrChecksum)
	}
	id := codec.ID(tag[0])
	if !id.Concrete() {
		return nil, fmt.Errorf("unknown codec tag %d", tag[0])
	}
	return codec.New(id, payload, nbits)
}

// WriteRaw serializes a raw float64 array (the full-data baseline's
// output), closing with the same "ISCK" checksum footer as the v3 index
// container. Pre-footer files (written before checksumming existed) are
// still read.
func WriteRaw(w io.Writer, data []float64) (int64, error) {
	defer timeIO(tel.writeNs)()
	bw := bufio.NewWriter(w)
	cw := &sumWriter{w: bw}
	if _, err := io.WriteString(cw, rawMagic); err != nil {
		return cw.n, err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint64(len(data))); err != nil {
		return cw.n, err
	}
	if err := binary.Write(cw, binary.LittleEndian, data); err != nil {
		return cw.n, err
	}
	fileCRC := cw.file
	if _, err := io.WriteString(cw, footerMagic); err != nil {
		return cw.n, err
	}
	if err := binary.Write(cw, binary.LittleEndian, fileCRC); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	tel.rawWritten.Inc()
	tel.bytesWritten.Add(cw.n)
	return cw.n, nil
}

// RawSize returns the byte size WriteRaw produces for n elements
// (including the checksum footer).
func RawSize(n int) int64 { return 4 + 8 + int64(8*n) + footerSize }

// rawChunk is how many elements ReadRaw reads per step: allocation grows
// only as fast as bytes actually arrive, so a header whose count lies (a
// flipped bit can inflate it by 2^32) fails at EOF instead of demanding
// the whole declared size up front.
const rawChunk = 1 << 15

// ReadRaw parses an array written by WriteRaw. Files that end exactly
// after the data are the legacy un-checksummed layout and load as-is; a
// present footer is verified.
func ReadRaw(r io.Reader) ([]float64, error) {
	defer timeIO(tel.readNs)()
	cr := &sumReader{r: bufio.NewReader(r)}
	var magic [4]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("store: reading magic: %w", err)
	}
	if string(magic[:]) != rawMagic {
		return nil, fmt.Errorf("store: bad magic %q, not a raw array file", magic)
	}
	var n uint64
	if err := binary.Read(cr, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<34 {
		return nil, fmt.Errorf("store: implausible element count %d", n)
	}
	first := uint64(rawChunk)
	if n < first {
		first = n
	}
	data := make([]float64, 0, first)
	for remaining := n; remaining > 0; {
		c := uint64(rawChunk)
		if remaining < c {
			c = remaining
		}
		at := len(data)
		data = append(data, make([]float64, c)...)
		if err := binary.Read(cr, binary.LittleEndian, data[at:]); err != nil {
			return nil, err
		}
		remaining -= c
	}
	fileCRC := cr.file
	var fmagic [4]byte
	switch _, err := io.ReadFull(cr, fmagic[:]); err {
	case io.EOF:
		// Legacy layout: the file ends exactly after the data. One corruption
		// can masquerade as it — a count inflated to swallow the footer into
		// the data region — so a final element whose bytes open with the
		// footer magic is rejected as ambiguous rather than returned as data
		// (a genuine legacy array hits this with probability ~2^-32 per
		// element; checksummed rewrites are the way out).
		if len(data) > 0 {
			var lb [8]byte
			binary.LittleEndian.PutUint64(lb[:], math.Float64bits(data[len(data)-1]))
			if string(lb[:4]) == footerMagic {
				return nil, fmt.Errorf("store: raw array's last element looks like a checksum footer the count does not account for: %w", ErrChecksum)
			}
		}
	case nil:
		if string(fmagic[:]) != footerMagic {
			return nil, fmt.Errorf("store: trailing data after raw array")
		}
		var stored uint32
		if err := binary.Read(cr, binary.LittleEndian, &stored); err != nil {
			return nil, fmt.Errorf("store: reading footer checksum: %w", err)
		}
		if stored != fileCRC {
			return nil, fmt.Errorf("store: file checksum %08x, footer says %08x: %w", fileCRC, stored, ErrChecksum)
		}
		if err := expectEOF(cr); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("store: reading checksum footer: %w", err)
	}
	tel.rawRead.Inc()
	tel.bytesRead.Add(RawSize(len(data)))
	return data, nil
}
