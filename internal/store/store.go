// Package store defines the on-disk formats: a compact binary container for
// compressed bitmap indices (what the in-situ pipeline writes instead of raw
// data) and a raw float64 array format for the full-data baseline. Both are
// little-endian, versioned, and validated on read. docs/FORMATS.md specifies
// every layout byte-by-byte.
//
// Index file layout (all integers little-endian):
//
//	magic   "ISBM" (4 bytes)
//	version u32 (2; version-1 files are still read)
//	n       u64  elements indexed
//	bins    u32
//	edges   (bins+1) × f64   bin boundaries (reconstructs the binning)
//	per bin (v2):
//	    codec  u8            codec tag (1=WAH, 2=BBC, 3=Dense)
//	    nbytes u32
//	    nbytes × u8          encoded payload
//	per bin (v1):
//	    words u32
//	    words × u32          WAH-encoded words
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"insitubits/internal/binning"
	"insitubits/internal/bitvec"
	"insitubits/internal/codec"
	"insitubits/internal/index"
)

const (
	indexMagic = "ISBM"
	rawMagic   = "ISRW"
	// version is the container version WriteIndex produces; ReadIndex also
	// accepts the all-WAH version 1 layout.
	version   = 2
	versionV1 = 1
	// maxBins bounds allocation from untrusted headers.
	maxBins = 1 << 20
	// maxWords bounds a single bitvector's word count on a v1 read.
	maxWords = 1 << 28
	// maxPayload bounds a single bin's byte count on a v2 read.
	maxPayload = 4 * maxWords
)

// WriteIndex serializes an index in the v2 format, preserving each bin's
// codec. It returns the number of payload bytes written so callers can
// account I/O.
func WriteIndex(w io.Writer, x *index.Index) (int64, error) {
	defer timeIO(tel.writeNs)()
	bw := bufio.NewWriter(w)
	n, err := writeHeader(bw, x)
	if err != nil {
		return n, err
	}
	for b := 0; b < x.Bins(); b++ {
		bm := x.Bitmap(b)
		id := codec.Of(bm)
		if !id.Concrete() {
			return n, fmt.Errorf("store: bin %d has unknown codec", b)
		}
		payload := codec.Payload(bm)
		if err := bw.WriteByte(byte(id)); err != nil {
			return n, err
		}
		n++
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(payload))); err != nil {
			return n, err
		}
		n += 4
		if _, err := bw.Write(payload); err != nil {
			return n, err
		}
		n += int64(len(payload))
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	tel.indexesWritten.Inc()
	tel.bytesWritten.Add(n)
	return n, nil
}

// WriteIndexV1 serializes an index in the legacy all-WAH version-1 layout,
// re-encoding non-WAH bins. Kept so compatibility tests (and tools that
// must interoperate with pre-v2 readers) can produce v1 files.
func WriteIndexV1(w io.Writer, x *index.Index) (int64, error) {
	defer timeIO(tel.writeNs)()
	bw := bufio.NewWriter(w)
	n, err := writeHeaderVersion(bw, x, versionV1)
	if err != nil {
		return n, err
	}
	for b := 0; b < x.Bins(); b++ {
		words := bitvec.ToVector(x.Bitmap(b)).RawWords()
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(words))); err != nil {
			return n, err
		}
		n += 4
		if err := binary.Write(bw, binary.LittleEndian, words); err != nil {
			return n, err
		}
		n += int64(4 * len(words))
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	tel.indexesWritten.Inc()
	tel.bytesWritten.Add(n)
	return n, nil
}

func writeHeader(bw *bufio.Writer, x *index.Index) (int64, error) {
	return writeHeaderVersion(bw, x, version)
}

func writeHeaderVersion(bw *bufio.Writer, x *index.Index, ver uint32) (int64, error) {
	n := int64(0)
	if _, err := bw.WriteString(indexMagic); err != nil {
		return n, err
	}
	n += 4
	for _, v := range []any{ver, uint64(x.N()), uint32(x.Bins())} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return n, err
		}
		n += int64(binary.Size(v))
	}
	edges := binning.Edges(x.Mapper())
	if err := binary.Write(bw, binary.LittleEndian, edges); err != nil {
		return n, err
	}
	n += int64(8 * len(edges))
	return n, nil
}

// IndexSize returns the exact byte size WriteIndex (v2) will produce,
// letting the pipeline account modelled I/O without serializing.
func IndexSize(x *index.Index) int64 {
	n := int64(4 + 4 + 8 + 4) // magic, version, n, bins
	n += int64(8 * (x.Bins() + 1))
	for b := 0; b < x.Bins(); b++ {
		n += 1 + 4 + int64(x.Bitmap(b).SizeBytes())
	}
	return n
}

// validEdges rejects edges that would build a broken mapper: every edge
// must be finite and the sequence strictly increasing. (binning.NewExplicit
// re-checks monotonicity, but the store rejects non-finite values that a
// NaN/Inf-laden file would otherwise smuggle into query arithmetic.)
func validEdges(edges []float64) error {
	for i, e := range edges {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return fmt.Errorf("store: bin edge %d is not finite (%v)", i, e)
		}
		if i > 0 && edges[i-1] >= e {
			return fmt.Errorf("store: bin edges not strictly increasing at %d (%v >= %v)", i, edges[i-1], e)
		}
	}
	return nil
}

// ReadIndex parses an index written by WriteIndex (v2) or the legacy v1
// writer; v1 bins load as WAH.
func ReadIndex(r io.Reader) (*index.Index, error) {
	defer timeIO(tel.readNs)()
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("store: reading magic: %w", err)
	}
	if string(magic[:]) != indexMagic {
		return nil, fmt.Errorf("store: bad magic %q, not a bitmap index file", magic)
	}
	var ver uint32
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != version && ver != versionV1 {
		return nil, fmt.Errorf("store: unsupported index version %d", ver)
	}
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	var bins uint32
	if err := binary.Read(br, binary.LittleEndian, &bins); err != nil {
		return nil, err
	}
	if bins == 0 || bins > maxBins {
		return nil, fmt.Errorf("store: implausible bin count %d", bins)
	}
	edges := make([]float64, bins+1)
	if err := binary.Read(br, binary.LittleEndian, edges); err != nil {
		return nil, err
	}
	if err := validEdges(edges); err != nil {
		return nil, err
	}
	mapper, err := binning.NewExplicit(edges)
	if err != nil {
		return nil, fmt.Errorf("store: invalid edges: %w", err)
	}
	vecs := make([]bitvec.Bitmap, bins)
	for b := range vecs {
		var bm bitvec.Bitmap
		var err error
		if ver == versionV1 {
			bm, err = readBinV1(br, int(n))
		} else {
			bm, err = readBinV2(br, int(n))
		}
		if err != nil {
			return nil, fmt.Errorf("store: bin %d: %w", b, err)
		}
		vecs[b] = bm
	}
	x, err := index.FromParts(mapper, vecs, int(n))
	if err == nil {
		tel.indexesRead.Inc()
		tel.bytesRead.Add(IndexSize(x))
	}
	return x, err
}

func readBinV1(br *bufio.Reader, nbits int) (bitvec.Bitmap, error) {
	var words uint32
	if err := binary.Read(br, binary.LittleEndian, &words); err != nil {
		return nil, fmt.Errorf("header: %w", err)
	}
	if words > maxWords {
		return nil, fmt.Errorf("declares %d words", words)
	}
	raw := make([]uint32, words)
	if err := binary.Read(br, binary.LittleEndian, raw); err != nil {
		return nil, fmt.Errorf("payload: %w", err)
	}
	return bitvec.FromRawWords(raw, nbits)
}

func readBinV2(br *bufio.Reader, nbits int) (bitvec.Bitmap, error) {
	tag, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("header: %w", err)
	}
	id := codec.ID(tag)
	if !id.Concrete() {
		return nil, fmt.Errorf("unknown codec tag %d", tag)
	}
	var nbytes uint32
	if err := binary.Read(br, binary.LittleEndian, &nbytes); err != nil {
		return nil, fmt.Errorf("header: %w", err)
	}
	if nbytes > maxPayload {
		return nil, fmt.Errorf("declares %d payload bytes", nbytes)
	}
	payload := make([]byte, nbytes)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("payload: %w", err)
	}
	return codec.New(id, payload, nbits)
}

// WriteRaw serializes a raw float64 array (the full-data baseline's output).
func WriteRaw(w io.Writer, data []float64) (int64, error) {
	defer timeIO(tel.writeNs)()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(rawMagic); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(data))); err != nil {
		return 4, err
	}
	if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
		return 12, err
	}
	if err := bw.Flush(); err != nil {
		return 12, err
	}
	tel.rawWritten.Inc()
	tel.bytesWritten.Add(RawSize(len(data)))
	return RawSize(len(data)), nil
}

// RawSize returns the byte size WriteRaw produces for n elements.
func RawSize(n int) int64 { return 4 + 8 + int64(8*n) }

// ReadRaw parses an array written by WriteRaw.
func ReadRaw(r io.Reader) ([]float64, error) {
	defer timeIO(tel.readNs)()
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("store: reading magic: %w", err)
	}
	if string(magic[:]) != rawMagic {
		return nil, fmt.Errorf("store: bad magic %q, not a raw array file", magic)
	}
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<34 {
		return nil, fmt.Errorf("store: implausible element count %d", n)
	}
	data := make([]float64, n)
	if err := binary.Read(br, binary.LittleEndian, data); err != nil {
		return nil, err
	}
	tel.rawRead.Inc()
	tel.bytesRead.Add(RawSize(len(data)))
	return data, nil
}
