// Package store defines the on-disk formats: a compact binary container for
// compressed bitmap indices (what the in-situ pipeline writes instead of raw
// data) and a raw float64 array format for the full-data baseline. Both are
// little-endian, versioned, and validated on read.
//
// Index file layout (all integers little-endian):
//
//	magic   "ISBM" (4 bytes)
//	version u32 (currently 1)
//	n       u64  elements indexed
//	bins    u32
//	edges   (bins+1) × f64   bin boundaries (reconstructs the binning)
//	per bin:
//	    words u32
//	    words × u32          WAH-encoded words
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"insitubits/internal/binning"
	"insitubits/internal/bitvec"
	"insitubits/internal/index"
)

const (
	indexMagic = "ISBM"
	rawMagic   = "ISRW"
	version    = 1
	// maxBins bounds allocation from untrusted headers.
	maxBins = 1 << 20
	// maxWords bounds a single bitvector's word count on read.
	maxWords = 1 << 28
)

// WriteIndex serializes an index. It returns the number of payload bytes
// written so callers can account I/O.
func WriteIndex(w io.Writer, x *index.Index) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(indexMagic); err != nil {
		return n, err
	}
	n += 4
	if err := put(uint32(version)); err != nil {
		return n, err
	}
	if err := put(uint64(x.N())); err != nil {
		return n, err
	}
	if err := put(uint32(x.Bins())); err != nil {
		return n, err
	}
	if err := put(binning.Edges(x.Mapper())); err != nil {
		return n, err
	}
	for b := 0; b < x.Bins(); b++ {
		words := x.Vector(b).RawWords()
		if err := put(uint32(len(words))); err != nil {
			return n, err
		}
		if err := put(words); err != nil {
			return n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	tel.indexesWritten.Inc()
	tel.bytesWritten.Add(n)
	return n, nil
}

// IndexSize returns the exact byte size WriteIndex will produce, letting
// the pipeline account modelled I/O without serializing.
func IndexSize(x *index.Index) int64 {
	n := int64(4 + 4 + 8 + 4) // magic, version, n, bins
	n += int64(8 * (x.Bins() + 1))
	for b := 0; b < x.Bins(); b++ {
		n += 4 + int64(x.Vector(b).SizeBytes())
	}
	return n
}

// ReadIndex parses an index written by WriteIndex.
func ReadIndex(r io.Reader) (*index.Index, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("store: reading magic: %w", err)
	}
	if string(magic[:]) != indexMagic {
		return nil, fmt.Errorf("store: bad magic %q, not a bitmap index file", magic)
	}
	var ver uint32
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("store: unsupported index version %d", ver)
	}
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	var bins uint32
	if err := binary.Read(br, binary.LittleEndian, &bins); err != nil {
		return nil, err
	}
	if bins == 0 || bins > maxBins {
		return nil, fmt.Errorf("store: implausible bin count %d", bins)
	}
	edges := make([]float64, bins+1)
	if err := binary.Read(br, binary.LittleEndian, edges); err != nil {
		return nil, err
	}
	for _, e := range edges {
		if math.IsNaN(e) {
			return nil, fmt.Errorf("store: NaN bin edge")
		}
	}
	mapper, err := binning.NewExplicit(edges)
	if err != nil {
		return nil, fmt.Errorf("store: invalid edges: %w", err)
	}
	vecs := make([]*bitvec.Vector, bins)
	for b := range vecs {
		var words uint32
		if err := binary.Read(br, binary.LittleEndian, &words); err != nil {
			return nil, fmt.Errorf("store: bin %d header: %w", b, err)
		}
		if words > maxWords {
			return nil, fmt.Errorf("store: bin %d declares %d words", b, words)
		}
		raw := make([]uint32, words)
		if err := binary.Read(br, binary.LittleEndian, raw); err != nil {
			return nil, fmt.Errorf("store: bin %d payload: %w", b, err)
		}
		v, err := bitvec.FromRawWords(raw, int(n))
		if err != nil {
			return nil, fmt.Errorf("store: bin %d: %w", b, err)
		}
		vecs[b] = v
	}
	x, err := index.FromParts(mapper, vecs, int(n))
	if err == nil {
		tel.indexesRead.Inc()
		tel.bytesRead.Add(IndexSize(x))
	}
	return x, err
}

// WriteRaw serializes a raw float64 array (the full-data baseline's output).
func WriteRaw(w io.Writer, data []float64) (int64, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(rawMagic); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(data))); err != nil {
		return 4, err
	}
	if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
		return 12, err
	}
	if err := bw.Flush(); err != nil {
		return 12, err
	}
	tel.rawWritten.Inc()
	tel.bytesWritten.Add(RawSize(len(data)))
	return RawSize(len(data)), nil
}

// RawSize returns the byte size WriteRaw produces for n elements.
func RawSize(n int) int64 { return 4 + 8 + int64(8*n) }

// ReadRaw parses an array written by WriteRaw.
func ReadRaw(r io.Reader) ([]float64, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("store: reading magic: %w", err)
	}
	if string(magic[:]) != rawMagic {
		return nil, fmt.Errorf("store: bad magic %q, not a raw array file", magic)
	}
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<34 {
		return nil, fmt.Errorf("store: implausible element count %d", n)
	}
	data := make([]float64, n)
	if err := binary.Read(br, binary.LittleEndian, data); err != nil {
		return nil, err
	}
	tel.rawRead.Inc()
	tel.bytesRead.Add(RawSize(len(data)))
	return data, nil
}
