package store

import (
	"bytes"
	"math/rand"
	"testing"
)

// The readers parse untrusted bytes; none of them may panic or allocate
// absurdly, whatever the input. These tests throw random and
// adversarially-mutated bytes at every parser.
func TestReadersNeverPanic(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	// Seed corpus: valid files of each kind.
	x := buildIndex(t, 1, 500, 8)
	var idxBuf bytes.Buffer
	if _, err := WriteIndex(&idxBuf, x); err != nil {
		t.Fatal(err)
	}
	var rawBuf bytes.Buffer
	if _, err := WriteRaw(&rawBuf, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	ds := NewDataset(2, 2, 2)
	if err := ds.Add("v", make([]float64, 8)); err != nil {
		t.Fatal(err)
	}
	var dsBuf bytes.Buffer
	if _, err := WriteDataset(&dsBuf, ds); err != nil {
		t.Fatal(err)
	}
	corpus := [][]byte{idxBuf.Bytes(), rawBuf.Bytes(), dsBuf.Bytes()}

	tryAll := func(data []byte) {
		// Any of the three parsers must handle any of the inputs.
		_, _ = ReadIndex(bytes.NewReader(data))
		_, _ = ReadRaw(bytes.NewReader(data))
		_, _ = ReadDataset(bytes.NewReader(data))
	}

	// Pure random bytes.
	for trial := 0; trial < 300; trial++ {
		data := make([]byte, r.Intn(400))
		r.Read(data)
		tryAll(data)
	}
	// Mutations of valid files: truncations, bit flips, extensions.
	for trial := 0; trial < 500; trial++ {
		base := corpus[r.Intn(len(corpus))]
		data := append([]byte(nil), base...)
		switch r.Intn(3) {
		case 0:
			data = data[:r.Intn(len(data)+1)]
		case 1:
			if len(data) > 0 {
				data[r.Intn(len(data))] ^= 1 << uint(r.Intn(8))
			}
		default:
			extra := make([]byte, r.Intn(64))
			r.Read(extra)
			data = append(data, extra...)
		}
		tryAll(data)
	}
}

// TestHeaderBombsRejected feeds headers that declare absurd sizes; parsers
// must reject them before allocating.
func TestHeaderBombsRejected(t *testing.T) {
	// Index declaring 2^31 bins.
	bomb := append([]byte("ISBM"),
		1, 0, 0, 0, // version
		0, 0, 0, 0, 0, 0, 0, 0, // n
		0xFF, 0xFF, 0xFF, 0x7F, // bins
	)
	if _, err := ReadIndex(bytes.NewReader(bomb)); err == nil {
		t.Error("bin-count bomb accepted")
	}
	// Raw file declaring 2^60 elements.
	bomb = append([]byte("ISRW"), 0, 0, 0, 0, 0, 0, 0, 0x10)
	if _, err := ReadRaw(bytes.NewReader(bomb)); err == nil {
		t.Error("element-count bomb accepted")
	}
	// Dataset declaring 2^20 variables.
	bomb = append([]byte("ISDS"),
		1, 0, 0, 0, // version
		0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, // dims
		0, 0, 0x10, 0, // nvars = 2^20
	)
	if _, err := ReadDataset(bytes.NewReader(bomb)); err == nil {
		t.Error("variable-count bomb accepted")
	}
}
