// End-to-end acceptance for per-request tracing: one slow query is
// traceable from the slow-query log record, through the trace ID it
// carries, to the span tree served at /debug/traces — which must cover the
// query, its per-operand codec work, and the store read that loaded the
// index — with the Chrome export parsed by an independent decoder.
package insitubits_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"insitubits"
)

func TestSlowQueryTraceEndToEnd(t *testing.T) {
	// Identity tracing on (keep everything), slow-query log at threshold 0
	// so the query is guaranteed to be "slow".
	rec := insitubits.NewTraceRecorder(insitubits.TraceConfig{})
	insitubits.SetTraceRecorder(rec)
	defer insitubits.SetTraceRecorder(nil)
	var slowLog bytes.Buffer
	insitubits.SetSlowQueryLog(slog.New(slog.NewJSONHandler(&slowLog, nil)), 0)
	defer insitubits.SetSlowQueryLog(nil, 0)

	// Build an index and serialize it, as the pipeline would have.
	rng := rand.New(rand.NewSource(7))
	data := make([]float64, 4096)
	for i := range data {
		data[i] = rng.Float64()
	}
	m, err := insitubits.NewUniformBins(0, 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	var file bytes.Buffer
	if _, err := insitubits.WriteIndexFile(&file, insitubits.BuildIndex(data, m)); err != nil {
		t.Fatal(err)
	}

	// The traced request: read the index back, then query it, all under
	// one root span.
	ctx, root := insitubits.StartSpan(context.Background(), "request")
	if root == nil {
		t.Fatal("tracing not active")
	}
	traceID := insitubits.TraceIDOf(ctx)
	x, err := insitubits.ReadIndexFileCtx(ctx, bytes.NewReader(file.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// The spatial restriction forces real bitmap scans (a value-only count
	// is answered from cached cardinalities and consumes no operands).
	n, err := insitubits.SubsetCount(ctx, x, insitubits.QuerySubset{
		ValueLo: 0.25, ValueHi: 0.75, SpatialLo: 0, SpatialHi: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 || n >= 2048 {
		t.Fatalf("implausible count %d", n)
	}
	root.End()

	// 1. The slow-query log record carries the trace ID.
	logLine := slowLog.String()
	if !strings.Contains(logLine, `"trace_id":"`+traceID+`"`) {
		t.Fatalf("slow-query log does not carry trace_id %s:\n%s", traceID, logLine)
	}

	// 2. Fetching that ID from the live /debug/traces endpoint returns the
	// trace as Chrome trace-event JSON.
	dbg, err := insitubits.Telemetry.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()
	url := fmt.Sprintf("http://%s/debug/traces?id=%s&format=chrome", dbg.Addr, traceID)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s\n%s", url, resp.Status, body)
	}

	// 3. An independent decode of the export shows the full span tree:
	// query → per-operand codec ops → store read.
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("independent parse of Chrome export: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		names[ev.Name] = true
		if got := ev.Args["trace_id"]; got != traceID {
			t.Errorf("event %s trace_id = %q, want %q", ev.Name, got, traceID)
		}
	}
	for _, want := range []string{"request", "query.count", "store.read_index"} {
		if !names[want] {
			t.Errorf("span %q missing from trace %s: have %v", want, traceID, names)
		}
	}
	operand := false
	for name := range names {
		if strings.HasPrefix(name, "operand.") {
			operand = true
		}
	}
	if !operand {
		t.Errorf("no per-operand codec spans in trace: %v", names)
	}

	// 4. The trace list endpoint knows the trace too.
	resp, err = http.Get(fmt.Sprintf("http://%s/debug/traces", dbg.Addr))
	if err != nil {
		t.Fatal(err)
	}
	listBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(listBody, []byte(traceID)) {
		t.Errorf("trace %s not in /debug/traces listing", traceID)
	}
}

// TestRunStatusEndpoint drives a small pipeline and checks the live
// /debug/run dashboard payload it publishes.
func TestRunStatusEndpoint(t *testing.T) {
	reg := insitubits.NewTelemetryRegistry()
	sim, err := insitubits.NewHeat3D(8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := insitubits.PipelineConfig{
		Sim:       sim,
		Steps:     6,
		Select:    2,
		Bins:      16,
		Method:    insitubits.MethodBitmaps,
		Metric:    insitubits.MetricConditionalEntropy,
		Cores:     2,
		Telemetry: reg,
	}
	if _, err := insitubits.RunPipeline(cfg); err != nil {
		t.Fatal(err)
	}
	dbg, err := reg.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/run", dbg.Addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/run: %s", resp.Status)
	}
	var st insitubits.RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Done {
		t.Error("finished run not marked done")
	}
	if st.Workload != "heat3d" || st.Method != "bitmaps" || st.Strategy != "c_all" {
		t.Errorf("run identity: %+v", st)
	}
	if st.Steps != 6 || st.StepsDone != 6 || st.Selected != 2 {
		t.Errorf("run progress: steps %d/%d, selected %d", st.StepsDone, st.Steps, st.Selected)
	}
	if st.CodecBins["wah"]+st.CodecBins["bbc"]+st.CodecBins["dense"] == 0 {
		t.Errorf("no codec mix recorded: %+v", st.CodecBins)
	}
	if len(st.Phases) == 0 || st.Phases["simulate"].Count == 0 {
		t.Errorf("phase aggregates missing: %+v", st.Phases)
	}
	if time.Duration(st.ElapsedNs) <= 0 {
		t.Errorf("elapsed %d", st.ElapsedNs)
	}
}
