GO ?= go

.PHONY: all build test vet race race-hot bench bench-json bench-check trace-smoke overhead profile-smoke fuzz-smoke crash-matrix plan-diff replay-diff serve-chaos serve-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race pass focused on the packages with the most lock-free state: the
# query layer (slow-log gate, capture gate, codec counters), the telemetry
# registry (incl. the metrics-history ring), the workload-log writer, the
# profiling label gate + snapshot ring, the query server (admission
# semaphore, catalog generation swaps), and the root package (the /healthz
# probe racing a pipeline's concurrent generation publishes).
race-hot:
	$(GO) test -race . ./internal/query/ ./internal/telemetry/ ./internal/qlog/ ./internal/profiling/ ./internal/serve/

# Telemetry micro-benchmarks plus the instrumented-vs-disabled append pair.
bench:
	$(GO) test -run xxx -bench 'BenchmarkNoop|BenchmarkAppendTelemetry' -benchmem ./internal/telemetry/ ./internal/bitvec/

# Full benchmark sweep archived as machine-readable JSON (BENCH_<date>.json)
# for diffing across commits; cmd/benchjson parses the go test stream.
bench-json:
	$(GO) test -run xxx -bench . -benchmem ./internal/... | $(GO) run ./cmd/benchjson > BENCH_$$(date +%Y%m%d).json
	@echo wrote BENCH_$$(date +%Y%m%d).json

# Benchmark-trend regression gate over the archived BENCH_*.json snapshots:
# latest vs the previous snapshot (or -baseline), 10% noise threshold on
# ns/op. Warn-only so organic drift never blocks CI, but malformed or
# missing snapshots still hard-fail — a damaged archive must not read as
# "no regressions".
bench-check:
	$(GO) run ./cmd/benchtrend -warn-only

# Trace-export roundtrip smoke: the identity-tracing e2e acceptance (slow
# query → trace ID in the slow log → span tree from /debug/traces, Chrome
# export parsed independently) plus both exporter roundtrips.
trace-smoke:
	$(GO) test -run 'TestSlowQueryTraceEndToEnd|TestChromeTraceRoundtrip|TestOTLPJSONRoundtrip' . ./internal/telemetry/

# Timing guards for the < 2% observability budgets (docs/OBSERVABILITY.md):
# the telemetry hooks on the bitvec append hot loop, the slow-log gate +
# codec counters on the plain query path with ANALYZE disabled, and the
# workload-capture path with a qlog writer installed. Gated behind the env
# var because wall-clock assertions flap on loaded CI hosts; run it on a
# quiet machine.
# TestAnalyzeOverheadDisabled's measured prologue now includes the
# profiling label gate, and TestDisabledLabelZeroCost pins that gate to a
# single atomic load on its own.
overhead:
	TELEMETRY_OVERHEAD_GUARD=1 $(GO) test -run 'TestInstrumentationOverhead|TestAnalyzeOverheadDisabled|TestQlogCaptureOverhead|TestDisabledLabelZeroCost' -v ./internal/bitvec/ ./internal/query/ ./internal/profiling/

# Continuous-profiling acceptance (docs/OBSERVABILITY.md "Continuous
# profiling"): capture two CPU snapshots around an index recode under a
# codec-heavy query load and require the symbolized top/diff to name a
# codec word-loop function, plus the parser round-trip suite.
profile-smoke:
	$(GO) test -run 'TestProfileSmoke|TestParse|TestCollectorRingAndHandler' -v ./internal/profiling/

# Short fuzz passes over the untrusted parsers (docs/FORMATS.md): the
# index-file reader and the run-journal parser. Full corpus exploration is
# `go test -fuzz <target> ./internal/<pkg>/`.
fuzz-smoke:
	$(GO) test -run xxx -fuzz 'FuzzReadIndex$$' -fuzztime 10s ./internal/store/
	$(GO) test -run xxx -fuzz 'FuzzParseJournal$$' -fuzztime 10s ./internal/insitu/

# Planner-vs-naive differential smoke (DESIGN.md "Query planning & caching"):
# every query entry point through the cost-based planner — cache cold and
# warm — must be byte-identical to the fixed-order naive path across codecs,
# including the randomized fuzz sweep and the generation-invalidation and
# mining scan-reduction acceptance checks.
plan-diff:
	$(GO) test -run 'TestPlanned|TestPlanDiffFuzz|TestCacheGenerationInvalidationMidStream|TestMineCache' -v ./internal/query/ ./internal/mining/

# Workload capture/replay regression gate (docs/OBSERVABILITY.md "Workload
# capture & replay"): a captured log must replay with byte-identical result
# digests across all three codecs, planner on/off, and cache on/off —
# including against a codec-recoded index — and a tampered digest must fail.
replay-diff:
	$(GO) test -run 'TestReplay|TestCaptureWorkload' -v ./internal/replay/ ./internal/query/ ./internal/serve/

# The serving chaos matrix (docs/SERVING.md "Chaos harness"): overload
# storms against tiny admission limits (zero 5xx, every answer
# digest-verified), slow-loris connections starved out by the read
# deadline, reloads published mid-storm (every answer correct for the
# generation it claims), drain under load, and per-request panic
# isolation — all under the race detector.
serve-chaos:
	$(GO) test -race -run 'TestChaos' -v ./internal/serve/

# The serving smoke gate: a retrying load run against default limits must
# complete with zero errors, zero unrecovered sheds, and digest-stable
# answers.
serve-smoke:
	$(GO) test -race -run 'TestServeSmoke' ./internal/serve/

# The crash-safety acceptance suite (docs/ROBUSTNESS.md): kill a run at
# every recorded write boundary and every mid-write offset, resume, and
# require a byte-identical directory plus a clean fsck — under the race
# detector, together with the fault-injection and fsck corruption tables.
crash-matrix:
	$(GO) test -race -run 'TestCrashMatrix|TestResume|TestTransient|TestWorkerPanic|TestFsck' -v ./internal/insitu/

ci: vet build race-hot race plan-diff replay-diff trace-smoke profile-smoke bench-check overhead crash-matrix serve-chaos serve-smoke fuzz-smoke
