GO ?= go

.PHONY: all build test vet race bench overhead fuzz-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Telemetry micro-benchmarks plus the instrumented-vs-disabled append pair.
bench:
	$(GO) test -run xxx -bench 'BenchmarkNoop|BenchmarkAppendTelemetry' -benchmem ./internal/telemetry/ ./internal/bitvec/

# Timing guard for the < 2% telemetry overhead budget (docs/OBSERVABILITY.md).
# Gated behind the env var because wall-clock assertions flap on loaded CI
# hosts; run it on a quiet machine.
overhead:
	TELEMETRY_OVERHEAD_GUARD=1 $(GO) test -run TestInstrumentationOverhead -v ./internal/bitvec/

# Short fuzz pass over the untrusted index-file parser (docs/FORMATS.md);
# the full corpus exploration is `go test -fuzz FuzzReadIndex ./internal/store/`.
fuzz-smoke:
	$(GO) test -run xxx -fuzz 'FuzzReadIndex$$' -fuzztime 10s ./internal/store/

ci: vet build race overhead fuzz-smoke
