GO ?= go

.PHONY: all build test vet race race-hot bench bench-json overhead fuzz-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race pass focused on the packages with the most lock-free state: the
# query layer (slow-log gate, codec counters) and the telemetry registry.
race-hot:
	$(GO) test -race ./internal/query/ ./internal/telemetry/

# Telemetry micro-benchmarks plus the instrumented-vs-disabled append pair.
bench:
	$(GO) test -run xxx -bench 'BenchmarkNoop|BenchmarkAppendTelemetry' -benchmem ./internal/telemetry/ ./internal/bitvec/

# Full benchmark sweep archived as machine-readable JSON (BENCH_<date>.json)
# for diffing across commits; cmd/benchjson parses the go test stream.
bench-json:
	$(GO) test -run xxx -bench . -benchmem ./internal/... | $(GO) run ./cmd/benchjson > BENCH_$$(date +%Y%m%d).json
	@echo wrote BENCH_$$(date +%Y%m%d).json

# Timing guards for the < 2% observability budgets (docs/OBSERVABILITY.md):
# the telemetry hooks on the bitvec append hot loop, and the slow-log gate +
# codec counters on the plain query path with ANALYZE disabled. Gated behind
# the env var because wall-clock assertions flap on loaded CI hosts; run it
# on a quiet machine.
overhead:
	TELEMETRY_OVERHEAD_GUARD=1 $(GO) test -run 'TestInstrumentationOverhead|TestAnalyzeOverheadDisabled' -v ./internal/bitvec/ ./internal/query/

# Short fuzz pass over the untrusted index-file parser (docs/FORMATS.md);
# the full corpus exploration is `go test -fuzz FuzzReadIndex ./internal/store/`.
fuzz-smoke:
	$(GO) test -run xxx -fuzz 'FuzzReadIndex$$' -fuzztime 10s ./internal/store/

ci: vet build race-hot race overhead fuzz-smoke
