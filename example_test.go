package insitubits_test

import (
	"context"
	"fmt"

	"insitubits"
)

// The paper's Figure 1 dataset: 8 elements, 4 distinct values, indexed into
// one bitvector per value.
func ExampleBuildIndex() {
	data := []float64{4, 1, 2, 2, 3, 4, 3, 1}
	mapper, err := insitubits.NewExplicitBins([]float64{1, 2, 3, 4, 5})
	if err != nil {
		panic(err)
	}
	x := insitubits.BuildIndex(data, mapper)
	for b := 0; b < x.Bins(); b++ {
		fmt.Printf("e%d (=%g): count %d\n", b, mapper.Low(b), x.Count(b))
	}
	fmt.Printf("compressed size: %d bytes\n", x.SizeBytes())
	// Output:
	// e0 (=1): count 2
	// e1 (=2): count 2
	// e2 (=3): count 2
	// e3 (=4): count 2
	// compressed size: 16 bytes
}

// Metrics from bitmaps equal the full-data metrics exactly (the paper's
// no-accuracy-loss property), because both paths share the binning.
func ExamplePairFromBitmaps() {
	a := []float64{1, 1, 2, 2, 3, 3, 4, 4}
	b := []float64{1, 1, 2, 2, 3, 3, 4, 4} // identical: I(A;B) = H(A)
	m, err := insitubits.NewUniformBins(0, 5, 5)
	if err != nil {
		panic(err)
	}
	xa := insitubits.BuildIndex(a, m)
	xb := insitubits.BuildIndex(b, m)
	fromBits := insitubits.PairFromBitmaps(xa, xb)
	fromData := insitubits.PairFromData(a, b, m, m)
	fmt.Printf("H(A) = %.0f bits (bitmaps) = %.0f bits (data)\n", fromBits.EntropyA, fromData.EntropyA)
	fmt.Printf("I(A;B) = %.0f bits, H(A|B) = %.0f bits\n", fromBits.MI, fromBits.CondEntropyAB)
	// Output:
	// H(A) = 2 bits (bitmaps) = 2 bits (data)
	// I(A;B) = 2 bits, H(A|B) = 0 bits
}

// Compressed bitwise operations never decompress the operands.
func ExampleBitVector() {
	a := insitubits.FromIndices(100, []int{5, 50, 95})
	b := insitubits.FromIndices(100, []int{5, 60, 95})
	fmt.Println("and:", a.And(b).Count())
	fmt.Println("or: ", a.Or(b).Count())
	fmt.Println("xor:", a.XorCount(b))
	fmt.Println("range [0,50):", a.CountRange(0, 50))
	// Output:
	// and: 2
	// or:  4
	// xor: 2
	// range [0,50): 1
}

// Approximate aggregation returns rigorous bounds: the true sum of the
// discarded data is guaranteed to lie inside [Lo, Hi].
func ExampleSubsetSum() {
	data := []float64{0.5, 1.5, 2.5, 3.5, 4.5}
	m, err := insitubits.NewUniformBins(0, 5, 5)
	if err != nil {
		panic(err)
	}
	x := insitubits.BuildIndex(data, m)
	agg, err := insitubits.SubsetSum(context.Background(), x, insitubits.QuerySubset{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("count=%d estimate=%.1f bounds=[%.1f, %.1f]\n", agg.Count, agg.Estimate, agg.Lo, agg.Hi)
	// Output:
	// count=5 estimate=12.5 bounds=[10.0, 15.0]
}

// A value query on the compressed index.
func ExampleIndex_Query() {
	data := []float64{0.5, 1.5, 2.5, 3.5, 4.5, 1.4}
	m, err := insitubits.NewUniformBins(0, 5, 5)
	if err != nil {
		panic(err)
	}
	x := insitubits.BuildIndex(data, m)
	hits := x.Query(1, 3) // bins [1,2) and [2,3)
	fmt.Println("matches:", hits.Count())
	hits.Iterate(func(pos int) bool {
		fmt.Println("  element", pos)
		return true
	})
	// Output:
	// matches: 3
	//   element 1
	//   element 2
	//   element 5
}

// Correlation mining (Algorithm 2) on a deterministic planted pattern.
func ExampleMine() {
	// Two variables agreeing on the first half of the domain only.
	n := 2048
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = float64(i%8) + 0.5
		if i < n/2 {
			b[i] = a[i] // correlated half
		} else {
			// Hash-scrambled: independent of a's bin pattern.
			b[i] = float64(int(uint32(i)*2654435761>>7)%8) + 0.5
		}
	}
	m, err := insitubits.NewUniformBins(0, 8, 8)
	if err != nil {
		panic(err)
	}
	findings, err := insitubits.Mine(
		insitubits.BuildIndex(a, m), insitubits.BuildIndex(b, m),
		insitubits.MiningConfig{UnitSize: 256, ValueThreshold: 0.01, SpatialThreshold: 0.1},
	)
	if err != nil {
		panic(err)
	}
	regions := insitubits.MergeFindings(findings)
	inFirstHalf := 0
	for _, r := range regions {
		if r.End <= n/2 {
			inFirstHalf++
		}
	}
	fmt.Printf("%d regions, %d inside the correlated half\n", len(regions), inFirstHalf)
	// Output:
	// 8 regions, 8 inside the correlated half
}

// Greedy time-step selection keeps the steps least correlated with the
// previously kept one.
func ExampleSelectTimeSteps() {
	m, err := insitubits.NewUniformBins(0, 10, 10)
	if err != nil {
		panic(err)
	}
	var steps []insitubits.Summary
	for t := 0; t < 9; t++ {
		data := make([]float64, 310)
		for i := range data {
			switch t {
			case 4: // an abrupt event in the first interval
				data[i] = float64((i * 7) % 10)
			case 7: // a second event with a different spatial structure
				data[i] = float64((i / 31) % 10)
			default:
				data[i] = 5
			}
		}
		steps = append(steps, insitubits.NewBitmapSummary(insitubits.BuildIndex(data, m)))
	}
	res, err := insitubits.SelectTimeSteps(steps, 3, insitubits.FixedLengthPartitioning{}, insitubits.MetricConditionalEntropy)
	if err != nil {
		panic(err)
	}
	fmt.Println("kept:", res.Selected)
	// Output:
	// kept: [0 4 7]
}

// Quantiles of discarded data, bounded by bin edges.
func ExampleSubsetQuantile() {
	data := make([]float64, 1000)
	for i := range data {
		data[i] = float64(i) / 100 // 0.00 .. 9.99
	}
	m, err := insitubits.NewUniformBins(0, 10, 20)
	if err != nil {
		panic(err)
	}
	x := insitubits.BuildIndex(data, m)
	med, err := insitubits.SubsetQuantile(context.Background(), x, insitubits.QuerySubset{}, 0.5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("median in [%.1f, %.1f]\n", med.Lo, med.Hi)
	// Output:
	// median in [4.5, 5.0]
}
