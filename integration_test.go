// Integration tests across package boundaries, driven through the public
// facade exactly as an application would use it.
package insitubits_test

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"insitubits"
)

// TestEndToEndInSituThenOffline runs the full lifecycle: simulate, reduce
// in situ, persist the selected bitmaps to real files, reload them, and run
// offline analyses on the reloaded indices.
func TestEndToEndInSituThenOffline(t *testing.T) {
	dir := t.TempDir()

	// In-situ phase.
	sim, err := insitubits.NewHeat3D(24, 24, 16)
	if err != nil {
		t.Fatal(err)
	}
	store, err := insitubits.NewIOStore(250)
	if err != nil {
		t.Fatal(err)
	}
	res, err := insitubits.RunPipeline(insitubits.PipelineConfig{
		Sim: sim, Steps: 20, Select: 5,
		Method: insitubits.MethodBitmaps, Bins: 130,
		Metric: insitubits.MetricConditionalEntropy,
		Cores:  2, Store: store,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Replay the trajectory and persist exactly the selected steps.
	replay, err := insitubits.NewHeat3D(24, 24, 16)
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := insitubits.NewUniformBins(0, 130, 130)
	if err != nil {
		t.Fatal(err)
	}
	keep := map[int]bool{}
	for _, s := range res.Selected {
		keep[s] = true
	}
	var paths []string
	var rawKept [][]float64
	for step := 0; step < 20; step++ {
		data := replay.Step(2)[0].Data
		if !keep[step] {
			continue
		}
		x := insitubits.BuildIndexParallel(data, mapper, 2)
		p := filepath.Join(dir, fmt.Sprintf("step%03d.isbm", step))
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := insitubits.WriteIndexFile(f, x); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
		rawKept = append(rawKept, data)
	}
	if len(paths) != 5 {
		t.Fatalf("persisted %d steps", len(paths))
	}

	// Offline phase: reload and verify analyses match the retained raw data.
	var reloaded []*insitubits.Index
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		x, err := insitubits.ReadIndexFile(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		reloaded = append(reloaded, x)
	}
	for i, x := range reloaded {
		wantHist := insitubits.Histogram(rawKept[i], mapper)
		for b, c := range x.Histogram() {
			if c != wantHist[b] {
				t.Fatalf("step %d bin %d: reloaded %d, raw %d", i, b, c, wantHist[b])
			}
		}
	}
	// Pairwise metrics between reloaded steps equal raw-data metrics.
	for i := 1; i < len(reloaded); i++ {
		got := insitubits.PairFromBitmaps(reloaded[i], reloaded[0])
		want := insitubits.PairFromData(rawKept[i], rawKept[0], mapper, mapper)
		if math.Abs(got.MI-want.MI) > 1e-9 || math.Abs(got.CondEntropyAB-want.CondEntropyAB) > 1e-9 {
			t.Fatalf("step %d: reloaded metrics diverge: %+v vs %+v", i, got, want)
		}
	}
}

// TestGreedyVsDPThroughFacade verifies the DP selection dominates greedy on
// the chain objective when both run over bitmap summaries.
func TestGreedyVsDPThroughFacade(t *testing.T) {
	sim, err := insitubits.NewHeat3D(16, 16, 12)
	if err != nil {
		t.Fatal(err)
	}
	m, err := insitubits.NewUniformBins(0, 130, 96)
	if err != nil {
		t.Fatal(err)
	}
	var steps []insitubits.Summary
	for i := 0; i < 18; i++ {
		steps = append(steps, insitubits.NewBitmapSummary(insitubits.BuildIndex(sim.Step(2)[0].Data, m)))
	}
	greedy, err := insitubits.SelectTimeSteps(steps, 5, insitubits.FixedLengthPartitioning{}, insitubits.MetricConditionalEntropy)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := insitubits.SelectTimeStepsDP(steps, 5, insitubits.MetricConditionalEntropy)
	if err != nil {
		t.Fatal(err)
	}
	gs := insitubits.SelectionChainScore(steps, greedy.Selected, insitubits.MetricConditionalEntropy)
	ds := insitubits.SelectionChainScore(steps, dp.Selected, insitubits.MetricConditionalEntropy)
	if ds < gs-1e-9 {
		t.Fatalf("DP score %g below greedy %g", ds, gs)
	}
}

// TestMiningQuerySubgroupOnOcean chains the offline analyses on one ocean
// dataset: mining finds the planted currents, the correlation query
// confirms elevated MI there, and subgroup discovery explains oxygen.
func TestMiningQuerySubgroupOnOcean(t *testing.T) {
	d, err := insitubits.GenerateOcean(64, 64, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	index := func(name string, bins int) *insitubits.Index {
		data, err := d.VarCurveOrder(name)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := insitubits.MinMax(data)
		m, err := insitubits.NewUniformBins(lo, hi+1e-9, bins)
		if err != nil {
			t.Fatal(err)
		}
		return insitubits.BuildIndex(data, m)
	}
	xt := index("temperature", 48)
	xs := index("salinity", 48)
	xo := index("oxygen", 48)

	findings, err := insitubits.Mine(xt, xs, insitubits.MiningConfig{
		UnitSize: 256, ValueThreshold: 0.002, SpatialThreshold: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("mining found nothing on planted data")
	}
	planted := d.PlantedCurveCells()
	hits := 0
	for _, f := range findings {
		overlap := 0
		for p := f.Begin; p < f.End; p++ {
			if planted[p] {
				overlap++
			}
		}
		if overlap*4 >= f.End-f.Begin {
			hits++
		}
	}
	if frac := float64(hits) / float64(len(findings)); frac < 0.8 {
		t.Fatalf("only %.0f%% of findings on planted currents", 100*frac)
	}

	// Correlation query over the strongest finding's unit vs a control.
	best := findings[0]
	for _, f := range findings {
		if f.SpatialMI > best.SpatialMI {
			best = f
		}
	}
	sub := insitubits.QuerySubset{SpatialLo: best.Begin, SpatialHi: best.End}
	in, err := insitubits.CorrelationQuery(context.Background(), xt, xs, sub, sub)
	if err != nil {
		t.Fatal(err)
	}
	if in.MI <= 0 {
		t.Fatalf("planted unit MI %g not positive", in.MI)
	}

	// Subgroup discovery over (T, S) explaining oxygen runs end to end.
	sgs, err := insitubits.DiscoverSubgroups([]*insitubits.Index{xt, xs}, xo, insitubits.SubgroupConfig{TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sgs) == 0 {
		t.Fatal("no subgroups discovered")
	}
	if s := insitubits.DescribeSubgroup(sgs[0], []*insitubits.Index{xt, xs}, []string{"T", "S"}); s == "" {
		t.Fatal("empty subgroup description")
	}
}

// TestClusterMatchesSingleNodePipeline cross-checks the cluster driver
// against the single-node pipeline on the same global problem: with one
// node the cluster is just the pipeline with different plumbing, so both
// must select the same steps.
func TestClusterMatchesSingleNodePipeline(t *testing.T) {
	const gx, gy, gz, steps, k = 16, 16, 12, 12, 4
	clusterRes, err := insitubits.RunCluster(insitubits.ClusterConfig{
		Nodes: 1, CoresPerNode: 2,
		GridX: gx, GridY: gy, GridZ: gz,
		Steps: steps, Select: k,
		Metric: insitubits.MetricConditionalEntropy,
		Method: insitubits.ClusterBitmaps,
		Bins:   160, LocalMBps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := insitubits.NewHeat3D(gx, gy, gz)
	if err != nil {
		t.Fatal(err)
	}
	pipeRes, err := insitubits.RunPipeline(insitubits.PipelineConfig{
		Sim: sim, Steps: steps, Select: k,
		Method: insitubits.MethodBitmaps, Bins: 160,
		Metric: insitubits.MetricConditionalEntropy, Cores: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusterRes.Selected) != len(pipeRes.Selected) {
		t.Fatalf("cluster %v vs pipeline %v", clusterRes.Selected, pipeRes.Selected)
	}
	for i := range pipeRes.Selected {
		if clusterRes.Selected[i] != pipeRes.Selected[i] {
			t.Fatalf("cluster %v vs pipeline %v", clusterRes.Selected, pipeRes.Selected)
		}
	}
}

// TestQueryAggregationAgainstSimulation checks the aggregation bounds on
// real simulation output through the facade.
func TestQueryAggregationAgainstSimulation(t *testing.T) {
	sim, err := insitubits.NewLulesh(8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	var fields []insitubits.Field
	for i := 0; i < 5; i++ {
		fields = sim.Step(2)
	}
	ranges := sim.Ranges()
	for k, f := range fields {
		m, err := insitubits.NewUniformBins(ranges[k][0], ranges[k][1], 64)
		if err != nil {
			t.Fatal(err)
		}
		x := insitubits.BuildIndex(f.Data, m)
		agg, err := insitubits.SubsetSum(context.Background(), x, insitubits.QuerySubset{})
		if err != nil {
			t.Fatal(err)
		}
		trueSum := 0.0
		for _, v := range f.Data {
			trueSum += v
		}
		if trueSum < agg.Lo-1e-6 || trueSum > agg.Hi+1e-6 {
			t.Fatalf("%s: true sum %g outside [%g, %g]", f.Name, trueSum, agg.Lo, agg.Hi)
		}
	}
}

// TestExternalFeedDrivesPipeline plugs an external producer (an application
// owning its own simulation loop) into the in-situ pipeline through the
// FeedSimulator adapter, running the separate-cores strategy so the
// producer, the queue and the reducer all overlap.
func TestExternalFeedDrivesPipeline(t *testing.T) {
	const n, steps = 4000, 24
	feed, ch, err := insitubits.NewFeedSimulator("external", []string{"field"}, n, [][2]float64{{0, 10}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for s := 0; s < steps; s++ {
			data := make([]float64, n)
			for i := range data {
				data[i] = 5 + 4*math.Sin(float64(i)/150+float64(s)/4)
			}
			ch <- []insitubits.Field{{Name: "field", Data: data}}
		}
		close(ch)
	}()
	res, err := insitubits.RunPipeline(insitubits.PipelineConfig{
		Sim: feed, Steps: steps, Select: 6,
		Method: insitubits.MethodBitmaps, Bins: 64,
		Metric:   insitubits.MetricConditionalEntropy,
		Cores:    2,
		Strategy: insitubits.SeparateCores{SimCores: 1, ReduceCores: 1, QueueCap: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 6 || res.Selected[0] != 0 {
		t.Fatalf("selected %v", res.Selected)
	}
	if feed.StepsSeen() != steps {
		t.Fatalf("feed consumed %d steps, want %d", feed.StepsSeen(), steps)
	}
}

// TestMergeFindingsRoundTrip mines, merges, and checks that regions tile
// the same element coverage as the raw findings.
func TestMergeFindingsRoundTrip(t *testing.T) {
	d, err := insitubits.GenerateOcean(64, 64, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	temp, _ := d.VarCurveOrder("temperature")
	salt, _ := d.VarCurveOrder("salinity")
	// Coarse bins: one value pair then spans several adjacent Z-units of a
	// planted current, which is what region merging coalesces.
	tlo, thi := insitubits.MinMax(temp)
	slo, shi := insitubits.MinMax(salt)
	mt, _ := insitubits.NewUniformBins(tlo, thi+1e-9, 12)
	ms, _ := insitubits.NewUniformBins(slo, shi+1e-9, 12)
	cfg := insitubits.MiningConfig{UnitSize: 256, ValueThreshold: 0.002, SpatialThreshold: 0.02}
	xa := insitubits.BuildIndex(temp, mt)
	xb := insitubits.BuildIndex(salt, ms)
	serial, err := insitubits.Mine(xa, xb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := insitubits.MineParallel(xa, xb, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("serial %d vs parallel %d findings", len(serial), len(parallel))
	}
	regions := insitubits.MergeFindings(serial)
	units := 0
	for _, reg := range regions {
		units += reg.Units
	}
	if units != len(serial) {
		t.Fatalf("regions cover %d units, findings %d", units, len(serial))
	}
	if len(regions) >= len(serial) && len(serial) > 4 {
		t.Fatalf("merging did not coalesce anything: %d regions from %d findings", len(regions), len(serial))
	}
}
