package insitubits_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"insitubits"
)

// getJSON fetches a debug endpoint into a generic map.
func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return out
}

// TestDebugEndpointShapes pins the JSON wire shapes of /debug/cache and
// /healthz against the process-wide registry, exactly as a dashboard
// consumes them: the cache stats keys, and the run/qlog/cache component
// sections /healthz embeds.
func TestDebugEndpointShapes(t *testing.T) {
	srv, err := insitubits.Telemetry.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	// A default cache and an installed workload log make both components
	// report as live.
	insitubits.SetDefaultBitmapCache(insitubits.NewBitmapCache(1 << 20))
	defer insitubits.SetDefaultBitmapCache(nil)
	w, err := insitubits.CreateQueryLog(filepath.Join(t.TempDir(), "probe.isql"))
	if err != nil {
		t.Fatal(err)
	}
	insitubits.InstallQueryLog(w)
	defer func() {
		insitubits.InstallQueryLog(nil)
		w.Close()
	}()

	cache := getJSON(t, base+"/debug/cache")
	for _, key := range []string{"enabled", "entries", "bytes", "max_bytes", "hits", "misses", "evictions", "invalidations"} {
		if _, ok := cache[key]; !ok {
			t.Errorf("/debug/cache missing %q: %v", key, cache)
		}
	}
	if cache["enabled"] != true {
		t.Errorf("/debug/cache enabled = %v with a default cache installed", cache["enabled"])
	}

	health := getJSON(t, base+"/healthz")
	if health["status"] != "ok" {
		t.Errorf("/healthz status = %v", health["status"])
	}
	if _, ok := health["uptime_seconds"]; !ok {
		t.Error("/healthz missing uptime_seconds")
	}
	qh, ok := health["qlog"].(map[string]any)
	if !ok {
		t.Fatalf("/healthz missing qlog section: %v", health)
	}
	if qh["enabled"] != true {
		t.Errorf("/healthz qlog.enabled = %v with a writer installed", qh["enabled"])
	}
	for _, key := range []string{"records", "dropped", "errors", "queue_depth", "queue_cap"} {
		if _, ok := qh[key]; !ok {
			t.Errorf("/healthz qlog section missing %q: %v", key, qh)
		}
	}
	if ch, ok := health["cache"].(map[string]any); !ok || ch["enabled"] != true {
		t.Errorf("/healthz cache section = %v", health["cache"])
	}
}

// TestHealthzReportsRun runs a small pipeline with an output directory and
// checks /healthz's run section carries the index generation and the
// sealed journal state — the satellite liveness contract.
func TestHealthzReportsRun(t *testing.T) {
	srv, err := insitubits.Telemetry.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sim, err := insitubits.NewHeat3D(16, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	store, err := insitubits.NewIOStore(250)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := insitubits.RunPipeline(insitubits.PipelineConfig{
		Sim: sim, Steps: 6, Select: 2,
		Method: insitubits.MethodBitmaps, Bins: 32,
		Metric: insitubits.MetricConditionalEntropy,
		Cores:  2, Store: store, OutputDir: t.TempDir(),
	}); err != nil {
		t.Fatal(err)
	}

	health := getJSON(t, "http://"+srv.Addr+"/healthz")
	run, ok := health["run"].(map[string]any)
	if !ok {
		t.Fatalf("/healthz missing run section: %v", health)
	}
	if run["done"] != true {
		t.Errorf("run.done = %v after the pipeline returned", run["done"])
	}
	if gen, _ := run["generation"].(float64); gen <= 0 {
		t.Errorf("run.generation = %v, want > 0 (bitmap indexes were built)", run["generation"])
	}
	if run["journal"] != "sealed" {
		t.Errorf("run.journal = %v, want \"sealed\" after a completed -out run", run["journal"])
	}
}

// TestHealthzDuringPublish hammers /healthz while a pipeline run is in
// flight — every in-situ step publishes fresh bitmap indexes, so the run
// section's generation field is being bumped concurrently with the probe
// reads. The probe asserts the JSON shape stays intact on every poll and
// the observed generations are monotone; under `make race-hot` (which
// includes this package) the race detector additionally certifies the
// status provider's atomics. This is the contract a liveness probe relies
// on: /healthz never serves a torn or regressing run section mid-run.
func TestHealthzDuringPublish(t *testing.T) {
	srv, err := insitubits.Telemetry.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	url := "http://" + srv.Addr + "/healthz"

	sim, err := insitubits.NewHeat3D(16, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() {
		_, err := insitubits.RunPipeline(insitubits.PipelineConfig{
			Sim: sim, Steps: 24, Select: 4,
			Method: insitubits.MethodBitmaps, Bins: 32,
			Metric: insitubits.MetricConditionalEntropy,
			Cores:  2,
		})
		runErr <- err
	}()

	var lastGen float64
	sawRun := false
	for done := false; !done; {
		select {
		case err := <-runErr:
			if err != nil {
				t.Fatal(err)
			}
			done = true
		default:
		}
		health := getJSON(t, url)
		if health["status"] != "ok" {
			t.Fatalf("/healthz status = %v mid-run", health["status"])
		}
		if _, ok := health["uptime_seconds"]; !ok {
			t.Fatal("/healthz lost uptime_seconds mid-run")
		}
		run, ok := health["run"].(map[string]any)
		if !ok {
			continue // probe raced ahead of the run-status publish
		}
		sawRun = true
		for _, key := range []string{"workload", "method", "steps", "steps_done", "current_step", "elapsed_ns", "done"} {
			if _, ok := run[key]; !ok {
				t.Fatalf("/healthz run section missing %q mid-run: %v", key, run)
			}
		}
		if gen, _ := run["generation"].(float64); gen > 0 {
			if gen < lastGen {
				t.Fatalf("/healthz run.generation regressed %v -> %v", lastGen, gen)
			}
			lastGen = gen
		}
	}
	if !sawRun {
		t.Fatal("no poll observed the run section")
	}
	if lastGen <= 0 {
		t.Errorf("no poll observed a positive index generation (last = %v)", lastGen)
	}
	// The final state matches what TestHealthzReportsRun pins for a
	// completed run.
	run, _ := getJSON(t, url)["run"].(map[string]any)
	if run == nil || run["done"] != true {
		t.Errorf("run section after completion = %v", run)
	}
}

// TestMetricsHistoryFacade drives the metrics-history plane through the
// facade: StartMetricsHistory publishes the ring, queries move the
// counters, and /debug/metrics/history serves rates a sparkline can draw.
func TestMetricsHistoryFacade(t *testing.T) {
	reg := insitubits.NewTelemetryRegistry()
	srv, err := reg.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := insitubits.StartMetricsHistory(reg, time.Hour, 16)
	defer h.Stop()
	reg.Counter("query.count").Add(5)
	h.Sample()

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/metrics/history", srv.Addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d insitubits.MetricsHistoryDump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if len(d.Samples) < 2 || d.Capacity != 16 {
		t.Fatalf("dump: %d samples, capacity %d", len(d.Samples), d.Capacity)
	}
	if _, ok := d.Rates["query.count"]; !ok {
		t.Errorf("dump rates missing query.count: %v", d.Rates)
	}
}
